/// Adaptive allocation bench: confidence-driven session budgets against the
/// uniform grid. Runs the same campaign twice — a flat
/// sessions_per_scenario sweep, then the adaptive driver targeting exactly
/// the max detection-interval half-width the uniform run achieved — and
/// demonstrates the adaptive run matching (or tightening) that half-width at
/// no more than the uniform session budget, with the saved sessions broken
/// out per scenario. Exits nonzero if adaptive ever needs more sessions or
/// lands wider — the claim CI smoke-checks.
///
///   $ ./adaptive_alloc [threads] [uniform_sessions_per_scenario]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "campaign/adaptive_driver.hpp"
#include "campaign/campaign_engine.hpp"
#include "util/stats.hpp"

using namespace emutile;

namespace {

CampaignSpec make_spec(int replicas) {
  CampaignSpec spec;
  for (const char* name : {"9sym", "styr"}) spec.add_catalog_design(name);
  spec.eco.placer_effort = bench::effort_for(paper_design("styr").clbs);
  spec.master_seed = 2000;  // DAC 2000
  spec.sessions_per_scenario = replicas;
  // Few patterns on purpose: detection rates spread out over (0, 1], so the
  // scenarios genuinely differ in how many replicas their intervals need —
  // the skew adaptive allocation exists to exploit.
  spec.num_patterns = 24;
  spec.tilings[0].num_tiles = 6;
  spec.tilings[0].target_overhead = 0.22;
  return spec;
}

double max_halfwidth(const CampaignReport& report) {
  double hw = 0.0;
  for (const ScenarioStats& s : report.scenarios)
    hw = std::max(hw, AdaptiveCampaignDriver::scenario_halfwidth(
                          s, AdaptiveMetric::kDetection, 0.95));
  return hw;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10)
               : std::max(2u, std::thread::hardware_concurrency());
  const int replicas = argc > 2 ? std::atoi(argv[2]) : 20;

  bench::banner("Adaptive replica allocation: interval-driven budgets",
                "the sampling methodology behind the per-scenario rates");

  const CampaignSpec spec = make_spec(replicas);
  std::cout << "matrix: " << spec.designs.size() << " designs x "
            << spec.error_kinds.size() << " error kinds, uniform budget "
            << replicas << " replicas/scenario = " << spec.num_sessions()
            << " sessions\n\n";

  CampaignOptions engine;
  engine.num_threads = threads;
  std::cout << "uniform sweep...\n";
  const CampaignReport uniform = run_campaign(spec, engine);
  const double target = max_halfwidth(uniform);
  std::cout << "  " << Table::fmt(uniform.wall_seconds, 1) << " s, max "
            << "detection half-width " << Table::fmt(target, 4) << "\n\n";

  AdaptiveOptions options;
  options.target_halfwidth = target;
  options.initial_sessions = 4;
  options.engine = engine;
  options.on_round = [](const AdaptiveRoundInfo& info) {
    std::cout << "  round " << info.round << ": " << info.sessions
              << " sessions (" << info.total_sessions << " total), max hw "
              << Table::fmt(info.max_halfwidth, 4) << ", "
              << info.scenarios_above_target << " scenario(s) wide\n";
  };
  std::cout << "adaptive run (target = uniform's half-width)...\n";
  AdaptiveCampaignDriver driver(options);
  const AdaptiveResult adaptive = driver.run(spec);
  std::cout << "\n";

  Table t({"design", "error_kind", "p_detect", "uniform_n", "adaptive_n",
           "uniform_hw", "adaptive_hw"});
  for (std::size_t s = 0; s < uniform.scenarios.size(); ++s) {
    const ScenarioStats& u = uniform.scenarios[s];
    const ScenarioStats& a = adaptive.report.scenarios[s];
    t.add_row({u.design, to_string(u.error_kind),
               Table::fmt(u.completed()
                              ? static_cast<double>(u.detected) / u.completed()
                              : 0.0,
                          2),
               std::to_string(u.sessions), std::to_string(a.sessions),
               Table::fmt(u.detection_interval().half_width(), 4),
               Table::fmt(a.detection_interval().half_width(), 4)});
  }
  t.print(std::cout);

  const bool fewer = adaptive.total_sessions <= uniform.sessions;
  const bool tighter = adaptive.max_halfwidth <= target;
  std::cout << "\nuniform:  " << uniform.sessions << " sessions -> max hw "
            << Table::fmt(target, 4) << "\n"
            << "adaptive: " << adaptive.total_sessions << " sessions ("
            << adaptive.rounds << " rounds"
            << (adaptive.converged ? ", converged" : ", budget-capped")
            << ") -> max hw " << Table::fmt(adaptive.max_halfwidth, 4) << "\n"
            << "saved " << (uniform.sessions - adaptive.total_sessions)
            << " sessions ("
            << Table::fmt(100.0 *
                              static_cast<double>(uniform.sessions -
                                                  adaptive.total_sessions) /
                              static_cast<double>(uniform.sessions),
                          1)
            << "%) at equal-or-tighter max half-width: "
            << (fewer && tighter ? "yes" : "NO — BUG") << "\n";
  return fewer && tighter ? 0 : 1;
}
