/// A complete emulation debugging session (paper Section 3.1):
/// inject a design error into an FSM-class design, implement with tiling,
/// then detect -> localize (iterative probe insertion, each a tiled ECO)
/// -> correct -> re-verify, reporting the back-end CAD effort per step.
///
///   $ ./debug_session [seed]

#include <cstdlib>
#include <iostream>

#include "debug/debug_loop.hpp"
#include "designs/catalog.hpp"
#include "util/table.hpp"

using namespace emutile;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  std::cout << "== emulation debugging session ==\n\n";
  const Netlist golden = build_paper_design("styr", 5);
  std::cout << "golden design: styr-class FSM, "
            << golden.num_cells() << " cells\n";

  DebugSessionOptions options;
  options.error_kind = ErrorKind::kWrongConnection;
  options.seed = seed;
  options.num_patterns = 384;
  options.tiling.target_overhead = 0.25;
  options.tiling.num_tiles = 8;

  const DebugSessionReport report = run_debug_session(golden, options);

  std::cout << "injected error: " << report.injected.description << "\n\n";
  std::cout << "initial implementation: " << report.design_clbs
            << " CLBs, build effort " << report.build_effort.to_string()
            << "\n\n";

  if (!report.detection.error_detected) {
    std::cout << "detection: error not excited by "
              << report.detection.cycles_run
              << " patterns — rerun with another seed.\n";
    return 0;
  }
  std::cout << "detection: output " << report.detection.failing_output
            << " failed at cycle " << report.detection.first_fail_cycle
            << "\n\n";

  std::cout << "localization (" << report.localization.iterations.size()
            << " probe iterations):\n";
  Table iters({"iter", "probes", "bad", "tiles affected",
               "candidates before", "candidates after", "ECO ms"});
  int i = 0;
  for (const LocalizeIteration& it : report.localization.iterations) {
    int bad = 0;
    for (auto b : it.probe_bad) bad += b;
    iters.add_row({std::to_string(++i), std::to_string(it.probes.size()),
                   std::to_string(bad), std::to_string(it.tiles_affected),
                   std::to_string(it.candidates_before),
                   std::to_string(it.candidates_after),
                   Table::fmt(it.insert_effort.total_ms() +
                                  it.remove_effort.total_ms(),
                              1)});
  }
  iters.print(std::cout);
  std::cout << "suspects remaining: " << report.localization.suspects.size()
            << "\n\n";

  if (report.correction.corrected) {
    std::cout << "correction: fixed cell id "
              << report.correction.fixed_cell << " after "
              << report.correction.attempts << " attempt(s), effort "
              << report.correction.total_effort.to_string() << '\n';
    std::cout << "re-verification: "
              << (report.final_clean ? "CLEAN — design matches specification"
                                     : "still failing") << "\n\n";
  } else {
    std::cout << "correction: no suspect fixed the design (localization "
                 "aliasing); rerun with another seed.\n\n";
  }

  std::cout << "total debugging-iteration CAD effort: "
            << report.debug_effort.to_string() << '\n'
            << "(the paper's point: each iteration re-placed-and-routed "
               "only the affected tiles,\n not the whole design)\n";
  return 0;
}
