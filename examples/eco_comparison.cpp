/// Side-by-side ECO strategy comparison on one design: apply the identical
/// debugging change through tiling, Quick_ECO, incremental place-and-route,
/// and full re-implementation, on clones of the same starting layout —
/// a single-design slice of the paper's Figure 5 experiment.
///
///   $ ./eco_comparison

#include <iostream>

#include "core/tiling_engine.hpp"
#include "designs/catalog.hpp"
#include "eco/eco_strategies.hpp"
#include "hier/hierarchy.hpp"
#include "util/table.hpp"

using namespace emutile;

namespace {
EcoChange make_change(TiledDesign& d) {
  CellId victim;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) victim = id;
  d.netlist.set_lut_function(victim,
                             d.netlist.cell(victim).function.complement());
  EcoChange change;
  change.modified_cells = {victim};
  return change;
}
}  // namespace

int main() {
  std::cout << "== ECO strategy comparison (s9234-class design) ==\n\n";

  TilingParams tp;
  tp.seed = 9;
  tp.target_overhead = 0.20;
  tp.num_tiles = 10;
  tp.placer_effort = 0.5;
  tp.tracks_per_channel = 14;
  TiledDesign base =
      TilingEngine::build(build_paper_design("s9234", 1), tp);
  std::cout << "implemented: " << base.packed.num_clbs() << " CLBs on "
            << base.device->params().to_string() << ", "
            << base.tiles->num_tiles() << " tiles\n\n";

  DesignHierarchy hier("s9234");
  hier.bind_remaining(base.netlist, hier.add_block("functional_block"));

  TiledDesign for_quick = base.clone();
  TiledDesign for_incr = base.clone();
  TiledDesign for_full = base.clone();

  std::cout << "applying the same one-LUT fix through four strategies...\n\n";
  const EcoStrategyResult rt = tiled_eco(base, make_change(base), EcoOptions{});
  const EcoStrategyResult rq =
      quick_eco(for_quick, hier, make_change(for_quick), 5);
  const EcoStrategyResult ri =
      incremental_eco(for_incr, make_change(for_incr), IncrementalOptions{});
  const EcoStrategyResult rf = full_eco(for_full, make_change(for_full), 5);

  Table table({"strategy", "instances placed", "nets routed", "wall ms",
               "speedup vs tiled"});
  auto row = [&](const char* name, const EcoStrategyResult& r) {
    table.add_row({name, std::to_string(r.effort.instances_placed),
                   std::to_string(r.effort.nets_routed),
                   Table::fmt(r.effort.total_ms(), 1),
                   Table::fmt(r.effort.total_ms() / rt.effort.total_ms(), 2)});
  };
  row("tiled (this paper)", rt);
  row("Quick_ECO [Fang97]", rq);
  row("incremental P&R", ri);
  row("full re-implement", rf);
  table.print(std::cout);

  std::cout << "\nAll four designs remain functionally identical; tiling "
               "touched the\nsmallest slice of the physical design "
               "(Section 6.1's argument).\n";
  base.validate();
  for_quick.validate();
  for_incr.validate();
  for_full.validate();
  return 0;
}
