/// Campaign walkthrough: run a small fleet of debugging sessions — one
/// scenario per (design, error kind) — across worker threads, then print the
/// aggregate report. Every statistic is deterministic in the master seed: the
/// same spec gives the same report regardless of thread count.
///
///   $ ./campaign [threads] [master_seed]

#include <cstdlib>
#include <iostream>

#include "campaign/campaign_engine.hpp"
#include "designs/catalog.hpp"

using namespace emutile;

int main(int argc, char** argv) {
  const std::size_t threads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;
  const std::uint64_t master_seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::cout << "== debug campaign walkthrough ==\n\n";

  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.add_catalog_design("styr");
  spec.master_seed = master_seed;
  spec.sessions_per_scenario = 2;
  spec.num_patterns = 256;
  spec.tilings[0].num_tiles = 8;
  spec.tilings[0].target_overhead = 0.25;

  std::cout << "scenario matrix: " << spec.designs.size() << " designs x "
            << spec.error_kinds.size() << " error kinds x "
            << spec.tilings.size() << " tiling points, "
            << spec.sessions_per_scenario << " sessions each = "
            << spec.num_sessions() << " sessions\n\n";

  CampaignOptions options;
  options.num_threads = threads;
  options.campaign_id = "walkthrough";
  options.on_progress = [](const std::string& id, std::size_t done,
                           std::size_t total) {
    std::cout << "  [" << id << "] session " << done << "/" << total
              << " finished\n";
  };

  const CampaignReport report = run_campaign(spec, options);

  std::cout << '\n';
  report.print_summary(std::cout);
  std::cout << "\nJSON report (deterministic across thread counts):\n"
            << report.to_json();
  return 0;
}
