/// Orchestration demo: a two-instance fleet served entirely in-process.
///
/// Spins up two SessionService instances with their Unix-socket endpoints
/// (exactly what two `emutile_serviced` daemons would expose), points a
/// CampaignCoordinator at them through a fleet config, and runs one campaign
/// sharded across both. The merged report is then checked byte-identical to
/// a direct unsharded run_campaign — the whole point of the orchestration
/// layer.

#include <iostream>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "orchestrator/campaign_coordinator.hpp"
#include "service/service_endpoint.hpp"
#include "service/session_service.hpp"

using namespace emutile;

int main() {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "emutile-orchestrate-demo";
  std::filesystem::remove_all(root);

  // Two "hosts". Each gets its own root (spool, cache, out) and socket.
  ServiceConfig config_a;
  config_a.root = root / "host-a";
  config_a.num_threads = 2;
  ServiceConfig config_b = config_a;
  config_b.root = root / "host-b";
  SessionService service_a(config_a);
  SessionService service_b(config_b);
  ServiceEndpoint endpoint_a(service_a, config_a.root / "serviced.sock");
  ServiceEndpoint endpoint_b(service_b, config_b.root / "serviced.sock");

  FleetConfig fleet;
  fleet.instances.push_back(
      {"host-a", ServiceAddress::unix_socket(endpoint_a.socket_path())});
  fleet.instances.push_back(
      {"host-b", ServiceAddress::unix_socket(endpoint_b.socket_path())});
  std::cout << "fleet config:\n" << serialize_fleet_config(fleet) << "\n";

  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.add_catalog_design("styr");
  spec.sessions_per_scenario = 2;
  spec.master_seed = 2000;
  spec.num_patterns = 96;

  CoordinatorOptions options;
  options.poll_interval = std::chrono::milliseconds(50);
  options.on_snapshot = [](const FleetSnapshot& snap) {
    std::cout << "  " << snap.sessions_done << "/" << snap.sessions_total
              << " sessions, " << snap.shards_done << "/" << snap.shards.size()
              << " shards\n";
  };

  std::cout << "orchestrating " << spec.num_sessions() << " sessions across "
            << fleet.instances.size() << " in-process instances...\n";
  CampaignCoordinator coordinator(fleet, options);
  const OrchestrationResult result = coordinator.run(spec);

  std::cout << "\nmerged fleet report:\n";
  result.report.print_summary(std::cout);

  const CampaignReport direct = run_campaign(spec);
  const bool identical = result.report.to_json() == direct.to_json() &&
                         result.report.to_csv() == direct.to_csv();
  std::cout << "\nmerged vs direct run_campaign: "
            << (identical ? "byte-identical" : "MISMATCH — BUG") << "\n";

  std::filesystem::remove_all(root);
  return identical ? 0 : 1;
}
