/// Quickstart: implement a design with tiling, then apply one debugging
/// change and watch it stay confined to a single tile.
///
///   $ ./quickstart
///
/// Walks the paper's flow end to end on the c880-class ALU design:
/// synthesize -> pack -> place-and-route with 20% slack -> draw and lock
/// tiles -> insert a small piece of test logic as an ECO -> report how much
/// of the design the back-end had to touch.

#include <iostream>

#include "core/tiling_engine.hpp"
#include "designs/catalog.hpp"
#include "netlist/netlist_ops.hpp"
#include "timing/sta.hpp"
#include "util/table.hpp"

using namespace emutile;

int main() {
  std::cout << "== emutile quickstart ==\n\n";

  // 1. A synthesized netlist (generators mirror the paper's benchmarks; a
  //    real MCNC BLIF file would go through parse_blif_file instead).
  Netlist netlist = build_paper_design("c880", /*seed=*/42);
  std::cout << "design: " << netlist.name() << " — "
            << to_string(compute_stats(netlist)) << "\n\n";

  // 2. Implement with resource slack and locked tiles (paper steps 4-8).
  TilingParams params;
  params.seed = 42;
  params.target_overhead = 0.20;  // the paper's ~20% reserve
  params.num_tiles = 10;
  TiledDesign design = TilingEngine::build(std::move(netlist), params);

  const double overhead =
      static_cast<double>(design.device->num_clb_sites()) /
          static_cast<double>(design.packed.num_clbs()) -
      1.0;
  std::cout << "implemented on " << design.device->params().to_string()
            << "\n  " << design.packed.num_clbs() << " CLBs used, "
            << design.device->num_clb_sites() << " sites ("
            << Table::fmt(100 * overhead, 1) << "% slack), "
            << design.tiles->num_tiles() << " tiles, all locked\n";
  const TimingReport timing =
      analyze_timing(design.netlist, design.packed, *design.placement,
                     *design.routing, design.nets);
  std::cout << "  critical path " << Table::fmt(timing.critical_path_ns, 1)
            << " ns (endpoint: " << timing.critical_endpoint << ")\n\n";

  // 3. A debugging iteration: hang a 3-cell probe off the carry output.
  CellId anchor;
  for (CellId id : design.netlist.live_cells())
    if (design.netlist.cell(id).kind == CellKind::kLut) anchor = id;
  EcoChange change;
  const CellId p1 = design.netlist.add_lut(
      "probe_buf", TruthTable::buffer(), {design.netlist.cell_output(anchor)});
  const CellId p2 =
      design.netlist.add_dff("probe_ff", design.netlist.cell_output(p1));
  change.added_cells = {p1, p2};
  change.anchor_cells = {anchor};

  std::cout << "applying ECO: 2 new cells anchored at '"
            << design.netlist.cell(anchor).name << "'...\n";
  const EcoOutcome outcome =
      TilingEngine::apply_change(design, change, EcoOptions{});

  std::cout << "  success: " << (outcome.success ? "yes" : "no") << '\n'
            << "  affected tiles: " << outcome.affected.size() << " of "
            << design.tiles->num_tiles() << '\n'
            << "  back-end effort: " << outcome.effort.to_string() << '\n'
            << "  (a conventional flow would have re-placed all "
            << design.packed.live_insts().size() << " instances)\n";

  design.validate();
  std::cout << "\ndesign validated: placement legal, routing legal, "
               "interfaces locked.\n";
  return 0;
}
