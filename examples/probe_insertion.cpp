/// Control and observation logic demo (paper Section 4): insert a
/// controllability mux (LFSR-driven state injection) and observation
/// signature compactors on internal nets, emulate, and read the signatures
/// back — the hardware mechanics behind error detection and localization.
///
///   $ ./probe_insertion

#include <iostream>

#include "debug/test_logic.hpp"
#include "designs/catalog.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace emutile;

int main() {
  std::cout << "== control & observation logic insertion ==\n\n";

  Netlist nl = build_paper_design("sand", 3);
  std::cout << "design: sand-class FSM, " << nl.num_cells() << " cells, "
            << nl.num_dffs() << " FFs\n\n";

  // Pick three internal nets to observe.
  std::vector<NetId> probes;
  for (CellId id : nl.live_cells()) {
    if (nl.cell(id).kind != CellKind::kLut) continue;
    if (nl.net(nl.cell_output(id)).sinks.size() >= 2)
      probes.push_back(nl.cell_output(id));
    if (probes.size() == 3) break;
  }

  const std::size_t before = nl.num_cells();
  const ObservationPlan plan = insert_observation(nl, probes, "demo");
  std::cout << "observation: " << probes.size()
            << " probes -> " << (nl.num_cells() - before)
            << " new cells (" << kSignatureBits
            << "-bit signature compactor each)\n";

  // Control point on a separate net (controlling a probed net would rewire
  // the observation tap onto the mux output — correct, but it would make
  // the signature comparison below read as a mismatch).
  NetId controlled;
  for (CellId id : nl.live_cells()) {
    if (nl.cell(id).kind != CellKind::kLut) continue;
    const NetId out = nl.cell_output(id);
    if (std::find(probes.begin(), probes.end(), out) == probes.end() &&
        !nl.net(out).sinks.empty())
      controlled = out;
  }
  const std::size_t before_ctl = nl.num_cells();
  const ControlPoint control = insert_control(nl, controlled, "ctl");
  std::cout << "control: mux + 4-bit LFSR + trigger counter = "
            << (nl.num_cells() - before_ctl) << " new cells; "
            << control.rewired.size() << " sink(s) rewired\n\n";

  // Emulate and harvest signatures by readback.
  Simulator sim(nl);
  sim.reset();
  std::vector<unsigned> soft(probes.size(), 0);
  const auto patterns =
      random_patterns(nl.primary_inputs().size(), 128, 17);
  for (const Pattern& p : patterns) {
    sim.step(p);
    for (std::size_t i = 0; i < probes.size(); ++i)
      soft[i] = signature_step(soft[i], sim.net_value(probes[i]));
  }

  Table table({"probe net", "hardware signature", "software model", "match"});
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const unsigned hard = read_signature(
        plan.probes[i], [&](CellId ff) { return sim.ff_state(ff); });
    table.add_row({nl.net(probes[i]).name, std::to_string(hard),
                   std::to_string(soft[i]),
                   hard == soft[i] ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nremoving test logic...\n";
  remove_control(nl, control);
  remove_added_cells(nl, plan.added_cells);
  nl.validate();
  std::cout << "netlist restored: " << nl.num_cells() << " cells (was "
            << before << ")\n";
  return 0;
}
