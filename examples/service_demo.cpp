/// Session-service walkthrough: stand up an in-process campaign daemon,
/// submit two campaigns concurrently (different priorities), watch the
/// streamed snapshots land, then resubmit the first spec and see the result
/// cache serve it without re-running a single session.
///
///   $ ./service_demo [root_dir]
///
/// The same flow works out-of-process with the shipped tools:
///   $ emutile_serviced --root demo-root &
///   $ emutile_submit --root demo-root my_campaign.spec --wait

#include <filesystem>
#include <iostream>
#include <sstream>

#include "campaign/campaign_spec_io.hpp"
#include "service/session_service.hpp"

using namespace emutile;

namespace {

std::string demo_spec(const char* design, std::uint64_t seed) {
  std::ostringstream os;
  os << "emutile-campaign v1\n"
     << "design " << design << "\n"
     << "error_kind wrong-polarity\n"
     << "error_kind wrong-connection\n"
     << "tiling 6 0.3 1 12 4\n"
     << "sessions_per_scenario 3\n"
     << "master_seed " << seed << "\n"
     << "num_patterns 128\n"
     << "end\n";
  return os.str();
}

void show(const CampaignStatus& s) {
  std::cout << "  " << s.id << ": " << to_string(s.state) << ", "
            << s.sessions_done << "/" << s.sessions_total << " sessions, "
            << s.snapshots << " snapshots, " << s.cache_hits
            << " cache hits\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path root =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() /
                               "emutile-service-demo";
  std::filesystem::remove_all(root);

  std::cout << "== campaign session service walkthrough ==\n\n"
            << "service root: " << root.string() << "\n"
            << "  spool/     file-queue intake (*.spec)\n"
            << "  cache/     memoized session results\n"
            << "  out/<id>/  snapshots + final reports\n\n";

  ServiceConfig config;
  config.root = root;
  config.num_threads = 2;
  config.snapshot_every = 2;
  SessionService service(config);

  std::cout << "submitting two campaigns (9sym at priority 0, styr at 1)...\n";
  const std::string id_a = service.submit_text(demo_spec("9sym", 21), 0, "a");
  const std::string id_b = service.submit_text(demo_spec("styr", 34), 1, "b");
  service.drain();
  for (const CampaignStatus& s : service.list()) show(s);

  std::cout << "\nresubmitting the 9sym spec (should be all cache hits)...\n";
  const std::string id_c =
      service.submit_text(demo_spec("9sym", 21), 0, "a-again");
  service.wait(id_c);
  show(*service.status(id_c));

  const auto final_status = service.status(id_c);
  std::cout << "\nfinal report: "
            << (final_status->out_dir / "report.json").string() << "\n"
            << "cache: " << service.cache()->entries() << " entries, "
            << service.cache()->hits() << " hits, "
            << service.cache()->misses() << " misses total\n";
  static_cast<void>(id_a);
  static_cast<void>(id_b);
  return 0;
}
