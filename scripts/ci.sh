#!/usr/bin/env bash
# Tier-1 verify, preset-driven. The same steps run locally and in GitHub
# Actions (.github/workflows/ci.yml) — the workflow jobs invoke this script
# with explicit steps so the two can never drift.
#
#   scripts/ci.sh [step...]      steps: ci | pregate | asan | bench-smoke
#
#   ci           configure + build + ctest with the "ci" CMake preset
#                (RelWithDebInfo, -Wall -Wextra). The fast `unit`-labeled
#                tier runs first (ctest -L unit) so a broken build fails in
#                seconds, then the heavier service/stats tiers.
#                EMUTILE_BUILD_TYPE, when set, overrides the preset's
#                CMAKE_BUILD_TYPE — how the Actions matrix runs
#                {Release, Debug} through one preset.
#   pregate      build the "asan" preset and run only its `unit`-labeled
#                tests — the fail-fast gate the sanitizer job runs before
#                committing to the slow instrumented service/stats suites.
#   asan         the "asan" preset: AddressSanitizer over the concurrency-
#                heavy service/campaign/orchestrator/adaptive tests.
#   bench-smoke  build bench/campaign_sweep under the "ci" preset and run a
#                tiny sweep (2 threads x 1 replica, determinism-checked);
#                the per-scenario CSV lands in build/bench-smoke/ for the
#                workflow to upload as an artifact.
#
# No arguments reproduces the historical default: ci then asan
# (EMUTILE_SKIP_ASAN=1 skips the sanitizer pass).
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset=$1
  cmake --preset "$preset" \
    ${EMUTILE_BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$EMUTILE_BUILD_TYPE"}
  cmake --build --preset "$preset"
  if [[ "$preset" == ci ]]; then
    # Fail-fast pre-gate: the `unit`-labeled tier takes seconds; only when
    # it is green do the heavier service/stats tiers run.
    ctest --preset "$preset" -L unit
    ctest --preset "$preset" -LE unit
  else
    ctest --preset "$preset"
  fi
}

pregate() {
  # The sanitizer job's fail-fast gate: build the instrumented tree once and
  # run just the fast unit-labeled tests before the asan step reuses the
  # same build for the slow concurrency suites. --test-dir bypasses the asan
  # test preset (its name filter excludes the unit tier), so mirror the
  # preset's environment explicitly.
  cmake --preset asan
  cmake --build --preset asan
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan -L unit --output-on-failure -j 4
}

bench_smoke() {
  cmake --preset ci
  cmake --build --preset ci --target bench_campaign_sweep
  mkdir -p build/bench-smoke
  ./build/campaign_sweep 2 1 build/bench-smoke/campaign_sweep.csv \
    | tee build/bench-smoke/campaign_sweep.log
}

steps=("$@")
if [[ ${#steps[@]} -eq 0 ]]; then
  steps=(ci)
  [[ "${EMUTILE_SKIP_ASAN:-0}" != "1" ]] && steps+=(asan)
fi

for step in "${steps[@]}"; do
  case "$step" in
    ci|asan) run_preset "$step" ;;
    pregate) pregate ;;
    bench-smoke) bench_smoke ;;
    *)
      echo "unknown step '$step' (ci | pregate | asan | bench-smoke)" >&2
      exit 2
      ;;
  esac
done
