#!/usr/bin/env bash
# Tier-1 verify, preset-driven. The same steps run locally and in GitHub
# Actions (.github/workflows/ci.yml) — the workflow jobs invoke this script
# with explicit steps so the two can never drift.
#
#   scripts/ci.sh [step...]
#   steps: ci | pregate | asan | tsan | durability | bench-smoke | perf
#          | storm | perf-refresh
#
#   ci           configure + build + ctest with the "ci" CMake preset
#                (RelWithDebInfo, -Wall -Wextra). The fast `unit`-labeled
#                tier runs first (ctest -L unit) so a broken build fails in
#                seconds, then the heavier service/stats tiers.
#                EMUTILE_BUILD_TYPE, when set, overrides the preset's
#                CMAKE_BUILD_TYPE — how the Actions matrix runs
#                {Release, Debug} through one preset.
#   pregate      build the "asan" preset and run only its `unit`-labeled
#                tests — the fail-fast gate the sanitizer job runs before
#                committing to the slow instrumented service/stats suites.
#   asan         the "asan" preset: AddressSanitizer over the concurrency-
#                heavy service/campaign/orchestrator/adaptive tests.
#   tsan         the "tsan" preset: ThreadSanitizer over the lock-free
#                metrics registry (test_obs hammer) and the multi-threaded
#                service suite — the lane that keeps the relaxed-atomic
#                recording paths honestly race-free. The durability tier
#                rides along, so drain/reattach cross the same locks under
#                TSan that the service suite hammers.
#   durability   the crash-kill lane: run only the `durability`-labeled tests
#                (journal round-trips, SIGKILL-at-fault-point recovery, the
#                drain/handoff admission checks) under the instrumented
#                "asan" build — fork-heavy and SIGKILL-happy on purpose, so
#                it gets its own step instead of riding inside asan's ctest
#                preset. The randomized kill test prints its seed; rerun a
#                failure with EMUTILE_KILL_SEED=<seed> scripts/ci.sh
#                durability to replay the exact kill schedule.
#   bench-smoke  build bench/campaign_sweep under the "ci" preset and run a
#                tiny sweep (2 threads x 1 replica, determinism-checked);
#                the per-scenario CSV lands in build/bench-smoke/ for the
#                workflow to upload as an artifact. Ends with fleet_smoke: a
#                real 3-daemon fleet on TCP loopback (ephemeral ports read
#                back from each daemon's serviced.tcp file) driven through
#                emutile_orchestrate, asserting the merged report and the
#                stitched fleet trace.
#   perf         the perf-regression lane: run session_profile,
#                campaign_sweep, and fleet_scale on the pinned small grids
#                below, then compare their metrics JSON against the
#                checked-in baselines in bench/baselines/ with a 25%
#                tolerance band (tools/perf_compare; guarded keys are
#                machine-portable ratios and deterministic work units —
#                absolute seconds never gate). fleet_scale additionally
#                fails outright if a merged fleet report is not
#                byte-identical to the direct run. Artifacts land in
#                build/perf/ and are uploaded by CI on success and failure
#                alike.
#   storm        the submit-storm lane: drive the service front end with the
#                pinned epoll load generator (bench/submit_storm) in both
#                endpoint modes and compare against bench/baselines/
#                submit_storm.json. The guarded key is storm_submit_ratio —
#                legacy/reactor SUBMIT throughput, a machine-portable ratio
#                that regresses (grows) when the reactor endpoint loses its
#                edge over thread-per-connection; absolute req/s and latency
#                quantiles ride along as informational keys. Artifacts land
#                in build/storm/ and are uploaded by CI on success and
#                failure alike.
#   perf-refresh rerun the same pinned grids (perf + storm) and write their
#                metrics JSON straight into bench/baselines/ — how the
#                baselines are regenerated locally after an intentional perf
#                change.
#
# No arguments reproduces the historical default: ci then asan
# (EMUTILE_SKIP_ASAN=1 skips the sanitizer pass).
set -euo pipefail
cd "$(dirname "$0")/.."

# The pinned grid of the perf lane. Small on purpose (CI minutes), and the
# baselines were recorded with exactly these arguments — change them and the
# baselines together (perf-refresh).
PERF_PROFILE_ARGS=(--designs styr,sand --sessions 2 --tiles 6 --patterns 128
                   --threads 2)
PERF_SWEEP_ARGS=(2 1)
PERF_TOLERANCE=0.25

# The pinned shape of the storm lane. 512 clients x 32 one-shot requests per
# client over a single epoll generator thread (the generator must stay
# lighter than the servers under test), with a small --max-pending so the
# shed path is exercised; the baseline was recorded with exactly these
# arguments — change them and the baseline together (perf-refresh).
STORM_ARGS=(--clients 512 --requests-per-client 32 --max-pending 8)

# The pinned shape of the fleet-scaling lane: the bench's own defaults
# spelled out (16 sessions through in-process fleets of 1/2/4/8 instances).
# The guarded key is fleet_scale_ratio — largest-fleet wall time normalized
# by the best hardware-allowed speedup, relative to the one-instance fleet —
# so the gate tracks coordination overhead, not machine speed. The baseline
# was recorded with exactly these arguments (perf-refresh).
FLEET_SCALE_ARGS=(--sizes 1,2,4,8 --replicas 8 --patterns 96 --tiles 6)

run_preset() {
  local preset=$1
  cmake --preset "$preset" \
    ${EMUTILE_BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$EMUTILE_BUILD_TYPE"}
  cmake --build --preset "$preset"
  if [[ "$preset" == ci ]]; then
    # Fail-fast pre-gate: the `unit`-labeled tier takes seconds; only when
    # it is green do the heavier service/stats tiers run.
    ctest --preset "$preset" -L unit
    ctest --preset "$preset" -LE unit
  else
    ctest --preset "$preset"
  fi
}

pregate() {
  # The sanitizer job's fail-fast gate: build the instrumented tree once and
  # run just the fast unit-labeled tests before the asan step reuses the
  # same build for the slow concurrency suites. --test-dir bypasses the asan
  # test preset (its name filter excludes the unit tier), so mirror the
  # preset's environment explicitly.
  cmake --preset asan
  cmake --build --preset asan
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan -L unit --output-on-failure -j 4
}

durability() {
  # The crash-kill suite under ASan: build the instrumented tree (shared
  # with the asan/pregate steps) and run just the durability-labeled tier.
  # --test-dir bypasses the asan test preset's name filter, so mirror its
  # environment explicitly; EMUTILE_KILL_SEED passes through untouched for
  # replaying a logged randomized-kill schedule.
  cmake --preset asan
  cmake --build --preset asan
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan -L durability --output-on-failure -j 2
}

bench_smoke() {
  cmake --preset ci
  cmake --build --preset ci --target bench_campaign_sweep \
    bench_submit_storm emutile_serviced emutile_orchestrate emutile_top
  mkdir -p build/bench-smoke
  ./build/campaign_sweep 2 1 build/bench-smoke/campaign_sweep.csv \
    | tee build/bench-smoke/campaign_sweep.log
  # A tiny reactor-only storm: not a perf gate (that's the storm step), just
  # proof that the epoll endpoint survives a concurrent one-shot burst in
  # the same environment the fleet smoke runs in.
  ./build/submit_storm --mode reactor --clients 64 --requests-per-client 4 \
    --json build/bench-smoke/submit_storm.json \
    | tee build/bench-smoke/submit_storm.log
  fleet_smoke
}

# A real 3-instance fleet end to end, over TCP loopback: three daemons on
# ephemeral ports, one orchestrated campaign, then assert the observability
# artifacts — merged fleet metrics and a stitched fleet trace with spans
# from every instance — exist and are well-formed. This is both the
# distributed-tracing acceptance check and the cross-host transport smoke:
# the fleet config is assembled from each daemon's published serviced.tcp
# address file, exactly the way a multi-machine deployment would do it.
fleet_smoke() {
  local fleet_dir=build/bench-smoke/fleet
  rm -rf "$fleet_dir"
  mkdir -p "$fleet_dir"

  local pids=()
  stop_fleet() {
    local i
    for i in 1 2 3; do touch "$fleet_dir/i$i/stop" 2>/dev/null || true; done
    local pid
    for pid in "${pids[@]}"; do wait "$pid" 2>/dev/null || true; done
  }
  trap stop_fleet RETURN

  local i
  for i in 1 2 3; do
    mkdir -p "$fleet_dir/i$i"
    ./build/emutile_serviced --root "$fleet_dir/i$i" --threads 2 \
      --tcp 127.0.0.1:0 --snapshot-every 0 --slow-request-ms 30000 \
      > "$fleet_dir/i$i/daemon.log" 2>&1 &
    pids+=($!)
  done

  # Each daemon resolves its ephemeral port and publishes the bound address
  # in <root>/serviced.tcp; wait for all three before writing the fleet
  # config from those published addresses.
  local tries=0
  until [[ -s $fleet_dir/i1/serviced.tcp && -s $fleet_dir/i2/serviced.tcp \
           && -s $fleet_dir/i3/serviced.tcp ]]; do
    (( ++tries > 100 )) && { echo "fleet_smoke: daemons never came up" >&2
                             cat "$fleet_dir"/i*/daemon.log >&2; return 1; }
    sleep 0.1
  done

  {
    echo "emutile-fleet v1"
    for i in 1 2 3; do
      # serviced.tcp holds the URI form (tcp:host:port); the fleet config's
      # tcp kind wants the bare host:port.
      echo "instance i$i tcp $(sed 's/^tcp://' "$fleet_dir/i$i/serviced.tcp")"
    done
    echo "end"
  } > "$fleet_dir/fleet.cfg"

  cat > "$fleet_dir/smoke.spec" <<'EOF'
emutile-campaign v1
design 9sym
error_kind wrong-polarity
error_kind wrong-connection
tiling 6 0.3 1 12 4
sessions_per_scenario 3
master_seed 424242
num_patterns 96
end
EOF

  ./build/emutile_orchestrate --fleet "$fleet_dir/fleet.cfg" \
    --spec "$fleet_dir/smoke.spec" --out "$fleet_dir" --shards 3 \
    | tee "$fleet_dir/orchestrate.log"

  # One console snapshot while the fleet is still up — the live path the
  # operator tooling exercises (LIST + METRICS + TRACESPANS per instance).
  ./build/emutile_top --fleet "$fleet_dir/fleet.cfg" --iterations 1 \
    --no-clear | tee "$fleet_dir/top.log"
  grep -q "instance(s)" "$fleet_dir/top.log"

  stop_fleet
  trap - RETURN

  # The observability artifacts the workflow uploads must be non-empty and
  # carry the stitched trace: spans from all three instances under the run's
  # single trace id (the orchestrate log prints that line).
  test -s "$fleet_dir/report.json"
  test -s "$fleet_dir/fleet_metrics.txt"
  test -s "$fleet_dir/fleet_metrics.json"
  test -s "$fleet_dir/fleet_trace.json"
  grep -q '"traceEvents"' "$fleet_dir/fleet_trace.json"
  grep -q 'campaign.run' "$fleet_dir/fleet_trace.json"
  grep -q 'orchestrate.dispatch' "$fleet_dir/fleet_trace.json"
  grep -q 'from 3 instance(s)' "$fleet_dir/orchestrate.log"
  echo "fleet_smoke: stitched fleet trace OK"
}

build_perf_binaries() {
  cmake --preset ci
  cmake --build --preset ci \
    --target bench_session_profile bench_campaign_sweep bench_fleet_scale \
    perf_compare
}

run_perf_grid() {
  # $1: directory receiving the metrics JSON (build/perf or bench/baselines).
  local out_dir=$1
  mkdir -p "$out_dir" build/perf
  ./build/session_profile "${PERF_PROFILE_ARGS[@]}" \
    --json "$out_dir/session_profile.json" \
    | tee build/perf/session_profile.log
  ./build/campaign_sweep "${PERF_SWEEP_ARGS[@]}" \
    build/perf/campaign_sweep.csv "$out_dir/campaign_sweep.json" \
    | tee build/perf/campaign_sweep.log
  # fleet_scale exits nonzero if any merged fleet report diverges from the
  # direct run, so the perf lane doubles as a determinism gate.
  ./build/fleet_scale "${FLEET_SCALE_ARGS[@]}" \
    --root build/perf/fleet-scale \
    --json "$out_dir/fleet_scale.json" \
    | tee build/perf/fleet_scale.log
}

perf() {
  build_perf_binaries
  run_perf_grid build/perf
  ./build/perf_compare bench/baselines/session_profile.json \
    build/perf/session_profile.json "$PERF_TOLERANCE"
  ./build/perf_compare bench/baselines/campaign_sweep.json \
    build/perf/campaign_sweep.json "$PERF_TOLERANCE"
  ./build/perf_compare bench/baselines/fleet_scale.json \
    build/perf/fleet_scale.json "$PERF_TOLERANCE"
}

build_storm_binaries() {
  cmake --preset ci
  cmake --build --preset ci --target bench_submit_storm perf_compare
}

run_storm() {
  # $1: directory receiving the metrics JSON (build/storm or bench/baselines).
  local out_dir=$1
  mkdir -p "$out_dir" build/storm
  ./build/submit_storm "${STORM_ARGS[@]}" \
    --json "$out_dir/submit_storm.json" \
    | tee build/storm/submit_storm.log
}

storm() {
  build_storm_binaries
  run_storm build/storm
  ./build/perf_compare bench/baselines/submit_storm.json \
    build/storm/submit_storm.json "$PERF_TOLERANCE"
}

perf_refresh() {
  build_perf_binaries
  build_storm_binaries
  run_perf_grid bench/baselines
  run_storm bench/baselines
  echo "perf baselines regenerated in bench/baselines/ — review and commit"
}

steps=("$@")
if [[ ${#steps[@]} -eq 0 ]]; then
  steps=(ci)
  [[ "${EMUTILE_SKIP_ASAN:-0}" != "1" ]] && steps+=(asan)
fi

# Validate the whole step list up front: a typo must stop the run with a
# distinct exit code *before* any step has spent minutes building.
for step in "${steps[@]}"; do
  case "$step" in
    ci|asan|tsan|pregate|durability|bench-smoke|perf|storm|perf-refresh) ;;
    *)
      echo "unknown step '$step'" \
           "(ci | pregate | asan | tsan | durability | bench-smoke | perf |" \
           "storm | perf-refresh)" >&2
      exit 64
      ;;
  esac
done

for step in "${steps[@]}"; do
  step_start=$SECONDS
  case "$step" in
    ci|asan|tsan) run_preset "$step" ;;
    pregate) pregate ;;
    durability) durability ;;
    bench-smoke) bench_smoke ;;
    perf) perf ;;
    storm) storm ;;
    perf-refresh) perf_refresh ;;
  esac
  echo "ci.sh: step '$step' finished in $((SECONDS - step_start))s"
done
