#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
#
# Uses the "ci" CMake preset (RelWithDebInfo, -Wall -Wextra). Equivalent to:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset ci
cmake --build --preset ci
ctest --preset ci
