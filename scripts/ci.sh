#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite, then rebuild
# the service + campaign layers under AddressSanitizer and rerun their tests
# (the concurrency-heavy part of the codebase).
#
# Uses the "ci" CMake preset (RelWithDebInfo, -Wall -Wextra). Equivalent to:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest
# Set EMUTILE_SKIP_ASAN=1 to skip the sanitizer pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset ci
cmake --build --preset ci
ctest --preset ci

if [[ "${EMUTILE_SKIP_ASAN:-0}" != "1" ]]; then
  cmake --preset asan
  cmake --build --preset asan
  ctest --preset asan
fi
