#!/usr/bin/env bash
# Tier-1 verify, preset-driven. The same steps run locally and in GitHub
# Actions (.github/workflows/ci.yml) — the workflow jobs invoke this script
# with explicit steps so the two can never drift.
#
#   scripts/ci.sh [step...]      steps: ci | asan | bench-smoke
#
#   ci           configure + build + ctest with the "ci" CMake preset
#                (RelWithDebInfo, -Wall -Wextra). EMUTILE_BUILD_TYPE, when
#                set, overrides the preset's CMAKE_BUILD_TYPE — how the
#                Actions matrix runs {Release, Debug} through one preset.
#   asan         the "asan" preset: AddressSanitizer over the concurrency-
#                heavy service/campaign tests.
#   bench-smoke  build bench/campaign_sweep under the "ci" preset and run a
#                tiny sweep (2 threads x 1 replica, determinism-checked);
#                the per-scenario CSV lands in build/bench-smoke/ for the
#                workflow to upload as an artifact.
#
# No arguments reproduces the historical default: ci then asan
# (EMUTILE_SKIP_ASAN=1 skips the sanitizer pass).
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset=$1
  cmake --preset "$preset" \
    ${EMUTILE_BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$EMUTILE_BUILD_TYPE"}
  cmake --build --preset "$preset"
  ctest --preset "$preset"
}

bench_smoke() {
  cmake --preset ci
  cmake --build --preset ci --target bench_campaign_sweep
  mkdir -p build/bench-smoke
  ./build/campaign_sweep 2 1 build/bench-smoke/campaign_sweep.csv \
    | tee build/bench-smoke/campaign_sweep.log
}

steps=("$@")
if [[ ${#steps[@]} -eq 0 ]]; then
  steps=(ci)
  [[ "${EMUTILE_SKIP_ASAN:-0}" != "1" ]] && steps+=(asan)
fi

for step in "${steps[@]}"; do
  case "$step" in
    ci|asan) run_preset "$step" ;;
    bench-smoke) bench_smoke ;;
    *)
      echo "unknown step '$step' (ci | asan | bench-smoke)" >&2
      exit 2
      ;;
  esac
done
