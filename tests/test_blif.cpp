// BLIF reader/writer tests: grammar coverage and semantic round-trips.

#include <gtest/gtest.h>

#include "netlist/blif_parser.hpp"
#include "netlist/blif_writer.hpp"
#include "sim/patterns.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

TEST(Blif, ParsesMinimalModel) {
  const Netlist nl = parse_blif_string(R"(
.model tiny
.inputs a b
.outputs y
.names a b y
11 1
.end
)");
  EXPECT_EQ(nl.name(), "tiny");
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.num_luts(), 1u);
  const CellId lut = *nl.find_cell("y");
  EXPECT_EQ(nl.cell(lut).function, TruthTable::and_all(2));
}

TEST(Blif, DontCaresExpand) {
  const Netlist nl = parse_blif_string(R"(
.model dc
.inputs a b c
.outputs y
.names a b c y
1-- 1
-1- 1
--1 1
.end
)");
  const CellId lut = *nl.find_cell("y");
  EXPECT_EQ(nl.cell(lut).function, TruthTable::or_all(3));
}

TEST(Blif, OffSetCover) {
  const Netlist nl = parse_blif_string(R"(
.model off
.inputs a b
.outputs y
.names a b y
11 0
.end
)");
  const CellId lut = *nl.find_cell("y");
  EXPECT_EQ(nl.cell(lut).function, TruthTable::nand_all(2));
}

TEST(Blif, ConstantsAndLatches) {
  const Netlist nl = parse_blif_string(R"(
.model seq
.inputs d
.outputs q k1
.names k1
1
.latch d q re clk 0
.end
)");
  EXPECT_EQ(nl.num_dffs(), 1u);
  const CellId k = *nl.find_cell("k1");
  EXPECT_EQ(nl.cell(k).kind, CellKind::kConst1);
}

TEST(Blif, UseBeforeDefinition) {
  const Netlist nl = parse_blif_string(R"(
.model fwd
.inputs a
.outputs y
.names mid y
1 1
.names a mid
0 1
.end
)");
  EXPECT_EQ(nl.num_luts(), 2u);
  nl.validate();
}

TEST(Blif, CommentsAndContinuations) {
  const Netlist nl = parse_blif_string(
      ".model c # trailing comment\n"
      ".inputs a \\\n b\n"
      ".outputs y\n"
      ".names a b y\n"
      "11 1\n"
      ".end\n");
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
}

TEST(Blif, ErrorsHaveLineNumbers) {
  try {
    (void)parse_blif_string(".model m\n.inputs a\n.outputs y\n.bogus\n.end\n");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(Blif, UndefinedSignalRejected) {
  EXPECT_THROW(
      (void)parse_blif_string(
          ".model m\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n"),
      CheckError);
}

TEST(Blif, MixedCoverPolarityRejected) {
  EXPECT_THROW((void)parse_blif_string(".model m\n.inputs a b\n.outputs y\n"
                                       ".names a b y\n11 1\n00 0\n.end\n"),
               CheckError);
}

TEST(Blif, RoundTripPreservesBehaviour) {
  const Netlist original = test::make_adder4();
  const Netlist reparsed = parse_blif_string(to_blif_string(original));
  ASSERT_EQ(original.primary_inputs().size(),
            reparsed.primary_inputs().size());
  ASSERT_EQ(original.primary_outputs().size(),
            reparsed.primary_outputs().size());
  const auto patterns = exhaustive_patterns(9);
  EXPECT_EQ(test::run_patterns(original, patterns),
            test::run_patterns(reparsed, patterns));
}

TEST(Blif, RoundTripSequential) {
  const Netlist original = test::make_seq4();
  const Netlist reparsed = parse_blif_string(to_blif_string(original));
  const auto patterns = random_patterns(1, 64, 7);
  EXPECT_EQ(test::run_patterns(original, patterns),
            test::run_patterns(reparsed, patterns));
}

TEST(Blif, FileIo) {
  const Netlist nl = test::make_adder4();
  const std::string path = testing::TempDir() + "/emutile_roundtrip.blif";
  write_blif_file(nl, path);
  const Netlist back = parse_blif_file(path);
  EXPECT_EQ(back.num_luts(), nl.num_luts());
  EXPECT_THROW((void)parse_blif_file("/nonexistent/file.blif"), CheckError);
}

}  // namespace
}  // namespace emutile
