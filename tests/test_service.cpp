// Session-service tests: campaign spec IO (parse/serialize round-trip,
// malformed inputs, content hashing), the disk result cache (hit/miss/
// invalidation, report byte-equality across cached reruns), the priority/
// fair-share job scheduler, and the service itself end-to-end: spool intake,
// concurrent submissions, streamed snapshots, deterministic final reports,
// cache reuse on resubmission, and the Unix-socket endpoint.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_report_io.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "campaign/result_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "service/address.hpp"
#include "service/job_scheduler.hpp"
#include "service/service_client.hpp"
#include "service/service_endpoint.hpp"
#include "service/session_service.hpp"
#include "util/check.hpp"

namespace emutile {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name) {
    path = fs::path(::testing::TempDir()) / ("emutile-" + name);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// A small single-design catalog campaign in wire format: 2 error kinds x
/// 3 replicas = 6 sessions.
std::string small_spec_text(const std::string& design,
                            std::uint64_t master_seed) {
  std::ostringstream os;
  os << "# test campaign\n"
     << "emutile-campaign v1\n"
     << "design " << design << "\n"
     << "error_kind wrong-polarity\n"
     << "error_kind wrong-connection\n"
     << "tiling 6 0.3 1 12 4\n"
     << "sessions_per_scenario 3\n"
     << "master_seed " << master_seed << "\n"
     << "num_patterns 96\n"
     << "end\n";
  return os.str();
}

// ---------------------------------------------------------------- spec IO ---

TEST(CampaignSpecIo, CanonicalSerializationRoundTrips) {
  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.add_catalog_design("styr");
  spec.error_kinds = {ErrorKind::kLutFunction, ErrorKind::kWrongConnection};
  spec.tilings.clear();
  for (const int tiles : {6, 12}) {
    TilingParams t;
    t.num_tiles = tiles;
    t.target_overhead = 0.22;
    t.placer_effort = 0.75;
    spec.tilings.push_back(t);
  }
  spec.sessions_per_scenario = 4;
  spec.master_seed = 0xDEADBEEFull;
  spec.num_patterns = 192;
  spec.localizer.probes_per_iteration = 5;
  spec.localizer.eco.placer_effort = 0.5;
  spec.eco.max_region_expansions = 6;
  spec.measure_baselines = true;
  spec = spec.shard(1, 2);

  const std::string text = serialize_campaign_spec(spec);
  const CampaignSpec parsed = parse_campaign_spec(text);
  EXPECT_EQ(serialize_campaign_spec(parsed), text);
  EXPECT_EQ(spec_content_hash(parsed), spec_content_hash(spec));

  // The parsed spec is behaviorally identical: same jobs, same seeds.
  const auto a = spec.expand();
  const auto b = parsed.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].options.seed, b[i].options.seed);
  }
}

TEST(CampaignSpecIo, OmittedListsFallBackToDefaults) {
  const CampaignSpec parsed = parse_campaign_spec(
      "emutile-campaign v1\ndesign 9sym\nmaster_seed 7\nend\n");
  const CampaignSpec defaults;
  EXPECT_EQ(parsed.error_kinds.size(), defaults.error_kinds.size());
  ASSERT_EQ(parsed.tilings.size(), 1u);
  EXPECT_EQ(parsed.tilings[0].num_tiles, defaults.tilings[0].num_tiles);
  EXPECT_EQ(parsed.num_patterns, defaults.num_patterns);
  EXPECT_EQ(parsed.master_seed, 7u);
}

TEST(CampaignSpecIo, MalformedInputsThrowWithContext) {
  const auto reject = [](const std::string& text) {
    EXPECT_THROW(static_cast<void>(parse_campaign_spec(text)), CheckError)
        << text;
  };
  reject("");                                        // no header
  reject("emutile-campaign v2\nend\n");              // wrong version
  reject("emutile-campaign v1\n");                   // missing end
  reject("emutile-campaign v1\nfrobnicate 3\nend\n");  // unknown key
  reject("emutile-campaign v1\ndesign no-such-design\nend\n");
  reject("emutile-campaign v1\nerror_kind typo\nend\n");
  reject("emutile-campaign v1\nmaster_seed banana\nend\n");
  reject("emutile-campaign v1\nmaster_seed 1\nmaster_seed 2\nend\n");
  reject("emutile-campaign v1\nmaster_seed 1 2\nend\n");  // trailing token
  reject("emutile-campaign v1\ntiling 6 0.3\nend\n");     // short tiling
  reject("emutile-campaign v1\nshard 2 2\nend\n");        // index >= count
  reject("emutile-campaign v1\nend\nleftover\n");         // trailing content
  // Line numbers make daemon-side rejections debuggable.
  try {
    static_cast<void>(parse_campaign_spec(
        "emutile-campaign v1\n# comment\nfrobnicate 3\nend\n"));
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(CampaignSpecIo, ContentHashTracksEverySemanticField) {
  const CampaignSpec base =
      parse_campaign_spec(small_spec_text("9sym", 21));
  const std::uint64_t h0 = spec_content_hash(base);

  CampaignSpec changed = base;
  changed.master_seed = 22;
  EXPECT_NE(spec_content_hash(changed), h0);
  changed = base;
  changed.num_patterns = 97;
  EXPECT_NE(spec_content_hash(changed), h0);
  changed = base;
  changed.tilings[0].target_overhead = 0.31;
  EXPECT_NE(spec_content_hash(changed), h0);
  changed = base;
  changed.measure_baselines = true;
  EXPECT_NE(spec_content_hash(changed), h0);
  changed = base.shard(0, 2);
  EXPECT_NE(spec_content_hash(changed), h0);

  // Custom builders have no canonical form.
  CampaignSpec custom;
  custom.add_design("x", [](std::uint64_t) { return Netlist("x"); });
  EXPECT_THROW(static_cast<void>(serialize_campaign_spec(custom)),
               CheckError);
}

// ----------------------------------------------------------- result cache ---

TEST(ResultCache, StoreLoadRoundTripAndCorruptionIsAMiss) {
  ScratchDir scratch("cache-roundtrip");
  ResultCache cache(scratch.path / "cache");
  // This test exercises the disk tier directly: with the in-memory index on,
  // a corrupted disk entry would be (correctly) masked by the indexed value.
  cache.set_index_capacity(0);

  CachedSession s;
  s.error = "flow exploded:\nmulti line";
  s.detected = true;
  s.narrowed = true;
  s.clean = true;
  s.suspects = 3;
  s.iterations = 5;
  s.build_placed = 100;
  s.build_routed = 200;
  s.build_expanded = 300;
  s.debug_placed = 11;
  s.debug_routed = 22;
  s.debug_expanded = 33;
  s.design_clbs = 44;
  cache.store(77, s);
  EXPECT_EQ(cache.entries(), 1u);

  const auto loaded = cache.load(77);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->error, "flow exploded: multi line");  // newline flattened
  EXPECT_TRUE(loaded->detected);
  EXPECT_TRUE(loaded->narrowed);
  EXPECT_FALSE(loaded->corrected);
  EXPECT_TRUE(loaded->clean);
  EXPECT_EQ(loaded->suspects, 3u);
  EXPECT_EQ(loaded->iterations, 5u);
  EXPECT_EQ(loaded->debug_expanded, 33u);
  EXPECT_EQ(loaded->design_clbs, 44u);
  EXPECT_EQ(cache.hits(), 1u);

  EXPECT_FALSE(cache.load(78).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  // Corrupt entries read as misses, not crashes.
  std::ofstream(scratch.path / "cache" / "000000000000004d.session",
                std::ios::trunc)
      << "emutile-session v1\ngarbage\n";
  EXPECT_FALSE(cache.load(77).has_value());

  cache.store(77, s);
  EXPECT_TRUE(cache.load(77).has_value());
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.load(77).has_value());
}

TEST(ResultCache, ShardedIndexStaysCoherentWithDiskTier) {
  ScratchDir scratch("cache-index");
  ResultCache cache(scratch.path / "cache");

  // Spread keys across every shard (keys 0..63 cover all 16 stripes).
  const auto session_for = [](std::uint64_t key) {
    CachedSession s;
    s.detected = (key % 2) == 0;
    s.suspects = key;
    s.iterations = key * 3;
    s.design_clbs = 44 + key;
    return s;
  };
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t key = 0; key < kKeys; ++key)
    cache.store(key, session_for(key));
  EXPECT_EQ(cache.index_entries(), kKeys);
  EXPECT_EQ(cache.index_stores(), kKeys);

  // Loads are served from memory: values match what was stored, and the
  // disk files can vanish without the hot tier noticing.
  for (std::uint64_t key = 0; key < kKeys; ++key)
    fs::remove(scratch.path / "cache" /
               (format_u64_hex(key) + ".session"));
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value()) << "key " << key;
    EXPECT_EQ(loaded->suspects, key);
    EXPECT_EQ(loaded->iterations, key * 3);
    EXPECT_EQ(loaded->design_clbs, 44 + key);
  }
  EXPECT_EQ(cache.index_hits(), kKeys);
  EXPECT_EQ(cache.index_misses(), 0u);
  EXPECT_EQ(cache.hits(), kKeys);

  // A cold instance sharing the directory reads through the disk tier and
  // promotes hits into its own index: first load is an index miss + disk
  // hit, second load an index hit — same bytes both times.
  cache.clear();
  EXPECT_EQ(cache.index_entries(), 0u);
  EXPECT_FALSE(cache.load(1).has_value());  // cleared everywhere

  cache.store(9, session_for(9));
  ResultCache cold(scratch.path / "cache");
  const auto first = cold.load(9);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(cold.index_misses(), 1u);
  EXPECT_EQ(cold.index_hits(), 0u);
  const auto second = cold.load(9);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(cold.index_hits(), 1u);
  EXPECT_EQ(first->suspects, second->suspects);
  EXPECT_EQ(first->design_clbs, second->design_clbs);

  // Bounded shards FIFO-evict but never return wrong values: with room for
  // one entry per shard, a shard's second key evicts its first, and the
  // evicted key falls back to disk with the right bytes.
  ResultCache bounded(scratch.path / "cache-bounded");
  bounded.set_index_capacity(1);
  for (std::uint64_t key = 0; key < 32; ++key)
    bounded.store(key, session_for(key));
  EXPECT_LE(bounded.index_entries(), 16u);
  for (std::uint64_t key = 0; key < 32; ++key) {
    const auto loaded = bounded.load(key);
    ASSERT_TRUE(loaded.has_value()) << "key " << key;
    EXPECT_EQ(loaded->suspects, key);
  }
}

TEST(ResultCache, CampaignRerunsHitAndSpecChangesInvalidate) {
  ScratchDir scratch("cache-campaign");
  ResultCache cache(scratch.path / "cache");
  const CampaignSpec spec = parse_campaign_spec(small_spec_text("9sym", 21));

  CampaignOptions options;
  options.num_threads = 2;
  options.cache = &cache;
  const CampaignReport cold = run_campaign(spec, options);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, spec.num_sessions());

  const CampaignReport warm = run_campaign(spec, options);
  EXPECT_EQ(warm.cache_hits, spec.num_sessions());
  EXPECT_EQ(warm.cache_misses, 0u);

  // The determinism contract survives the cache: cached and fresh runs
  // emit identical bytes.
  EXPECT_EQ(warm.to_csv(), cold.to_csv());
  EXPECT_EQ(warm.to_json(), cold.to_json());
  const CampaignReport uncached = run_campaign(spec);
  EXPECT_EQ(uncached.to_json(), cold.to_json());

  // A semantically different spec shares nothing.
  CampaignSpec changed = spec;
  changed.num_patterns = 128;
  const CampaignReport miss = run_campaign(changed, options);
  EXPECT_EQ(miss.cache_hits, 0u);
  EXPECT_EQ(miss.cache_misses, changed.num_sessions());

  // An overlapping spec (subset of the scenario matrix, same master seed
  // and knobs) reuses the shared sessions via per-session keys: seeds are
  // split-derived from (scenario, replica), so any spec covering the same
  // lattice positions shares their sessions. A shard qualifies (its jobs
  // are a slice of the original's), and so does a smaller uniform budget —
  // its replicas are a prefix of each scenario's stream.
  const CampaignReport shard_run = run_campaign(spec.shard(0, 2), options);
  EXPECT_EQ(shard_run.cache_hits, shard_run.sessions);
  EXPECT_EQ(shard_run.cache_misses, 0u);
  CampaignSpec fewer = spec;
  fewer.sessions_per_scenario = 2;  // prefix of the 3-replica streams
  const CampaignReport prefix_run = run_campaign(fewer, options);
  EXPECT_EQ(prefix_run.cache_hits, prefix_run.sessions);
  EXPECT_EQ(prefix_run.cache_misses, 0u);
}

TEST(ResultCache, SizeBoundEvictsOldestMtimeFirst) {
  ScratchDir scratch("cache-evict");
  ResultCache cache(scratch.path / "cache");
  // Disk-eviction semantics: bypass the in-memory index so loads observe
  // what the bound actually kept on disk.
  cache.set_index_capacity(0);
  CachedSession s;
  s.detected = true;

  // Four entries with strictly increasing, explicitly-set mtimes (the clock
  // alone can't be trusted to tick between stores).
  const auto entry = [&](std::uint64_t key) {
    return scratch.path / "cache" / (format_u64_hex(key) + ".session");
  };
  std::size_t entry_bytes = 0;
  for (std::uint64_t key = 1; key <= 4; ++key) {
    cache.store(key, s);
    entry_bytes = fs::file_size(entry(key));
    fs::last_write_time(entry(key),
                        fs::file_time_type::clock::now() +
                            std::chrono::seconds(static_cast<int>(key)));
  }
  ASSERT_GT(entry_bytes, 0u);
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.evictions(), 0u);  // unbounded so far

  // Bound to two entries' worth: the two oldest (keys 1, 2) must go, the
  // two newest stay.
  cache.set_max_bytes(2 * entry_bytes);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_LE(cache.bytes(), 2 * entry_bytes);
  EXPECT_FALSE(cache.load(1).has_value());
  EXPECT_FALSE(cache.load(2).has_value());
  EXPECT_TRUE(cache.load(3).has_value());
  EXPECT_TRUE(cache.load(4).has_value());

  // A store that overflows the bound prunes the oldest survivor; the entry
  // just stored is the newest and survives.
  fs::last_write_time(entry(3), fs::file_time_type::clock::now() -
                                    std::chrono::hours(1));
  fs::last_write_time(entry(4), fs::file_time_type::clock::now() -
                                    std::chrono::minutes(30));
  cache.store(5, s);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 3u);
  EXPECT_FALSE(cache.load(3).has_value());
  EXPECT_TRUE(cache.load(5).has_value());

  // max_bytes() reads back; 0 disables eviction again.
  EXPECT_EQ(cache.max_bytes(), 2 * entry_bytes);
  cache.set_max_bytes(0);
  cache.store(6, s);
  cache.store(7, s);
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.evictions(), 3u);
}

// ---------------------------------------------------------- job scheduler ---

TEST(JobScheduler, FairlyInterleavesEqualPriorityStreams) {
  JobScheduler scheduler(1);  // single worker => observable total order
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;

  const auto blocker = [&](bool) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  };
  const auto stream_a = scheduler.open_stream(0);
  const auto stream_b = scheduler.open_stream(0);
  scheduler.submit(stream_a, blocker);  // hold the worker while we queue up
  for (int i = 0; i < 4; ++i) {
    scheduler.submit(stream_a, [&](bool) {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(0);
    });
    scheduler.submit(stream_b, [&](bool) {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(1);
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  scheduler.wait_all();

  ASSERT_EQ(order.size(), 8u);
  // Fair share: within any prefix, the two streams' counts differ by <= 1.
  int count[2] = {0, 0};
  for (const int stream : order) {
    ++count[stream];
    EXPECT_LE(std::abs(count[0] - count[1]), 1)
        << "streams must interleave fairly";
  }
}

TEST(JobScheduler, HigherPriorityPreemptsQueuedWork) {
  JobScheduler scheduler(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::vector<char> order;

  const auto low = scheduler.open_stream(0);
  const auto high = scheduler.open_stream(5);
  scheduler.submit(low, [&](bool) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  for (int i = 0; i < 3; ++i)
    scheduler.submit(low, [&](bool) {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back('l');
    });
  for (int i = 0; i < 3; ++i)
    scheduler.submit(high, [&](bool) {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back('h');
    });
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  scheduler.wait_all();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(std::string(order.begin(), order.begin() + 3), "hhh")
      << "queued high-priority units must run before queued low-priority "
         "ones";
}

TEST(JobScheduler, CancelledStreamsStillRunUnitsWithTheFlag) {
  JobScheduler scheduler(2);
  const auto stream = scheduler.open_stream(0);
  std::atomic<int> ran{0};
  std::atomic<int> cancelled{0};
  scheduler.cancel(stream);
  for (int i = 0; i < 5; ++i)
    scheduler.submit(stream, [&](bool unit_cancelled) {
      ++ran;
      if (unit_cancelled) ++cancelled;
    });
  scheduler.wait(stream);
  EXPECT_EQ(ran.load(), 5) << "cancellation must never drop units silently";
  EXPECT_EQ(cancelled.load(), 5);
  EXPECT_TRUE(scheduler.is_cancelled(stream));
}

// ---------------------------------------------------------------- service ---

/// Extract the first `"sessions": N` value of a report JSON.
std::size_t sessions_in_json(const std::string& json) {
  const std::string needle = "\"sessions\": ";
  const std::size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos);
  return static_cast<std::size_t>(
      std::strtoull(json.c_str() + at + needle.size(), nullptr, 10));
}

std::vector<fs::path> sorted_snapshots(const fs::path& out_dir) {
  std::vector<fs::path> snapshots;
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    if (entry.path().filename().string().rfind("snapshot-", 0) == 0)
      snapshots.push_back(entry.path());
  }
  std::sort(snapshots.begin(), snapshots.end());
  return snapshots;
}

TEST(SessionService, ServesConcurrentCampaignsDeterministicallyEndToEnd) {
  ScratchDir scratch("service-e2e");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 2;  // 6 sessions => snapshots at 2 and 4
  const std::string text_a = small_spec_text("9sym", 21);
  const std::string text_b = small_spec_text("styr", 34);

  std::string id_a, id_b, id_a2;
  {
    SessionService service(config);
    id_a = service.submit_text(text_a, 0, "alpha");
    id_b = service.submit_text(text_b, 1, "beta");
    EXPECT_NE(id_a, id_b);
    service.drain();

    for (const std::string& id : {id_a, id_b}) {
      const auto status = service.status(id);
      ASSERT_TRUE(status.has_value());
      EXPECT_EQ(status->state, CampaignState::kFinished) << status->error;
      EXPECT_EQ(status->sessions_done, 6u);
      EXPECT_GE(status->snapshots, 2u)
          << "the service must stream intermediate snapshots";
    }

    // Resubmitting a spec reuses the session cache: >= 90% of sessions are
    // served without re-running (here: all of them).
    id_a2 = service.submit_text(text_a, 0, "alpha-again");
    service.wait(id_a2);
    const auto again = service.status(id_a2);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->state, CampaignState::kFinished);
    EXPECT_GE(again->cache_hits * 10, again->sessions_done * 9)
        << "resubmission must reuse >=90% of sessions from the cache";
    EXPECT_EQ(again->cache_hits, 6u);
  }

  // Final reports are byte-identical to direct run_campaign runs of the
  // same specs — the determinism contract across the serving layer, cache
  // included.
  const CampaignReport direct_a = run_campaign(parse_campaign_spec(text_a));
  const CampaignReport direct_b = run_campaign(parse_campaign_spec(text_b));
  const fs::path out = scratch.path / "out";
  EXPECT_EQ(read_file(out / id_a / "report.json"), direct_a.to_json());
  EXPECT_EQ(read_file(out / id_a / "report.csv"), direct_a.to_csv());
  EXPECT_EQ(read_file(out / id_b / "report.json"), direct_b.to_json());
  EXPECT_EQ(read_file(out / id_b / "report.csv"), direct_b.to_csv());
  EXPECT_EQ(read_file(out / id_a2 / "report.json"), direct_a.to_json())
      << "a cache-served campaign must emit identical bytes";

  // Snapshots stream monotonically growing partial aggregates.
  for (const std::string& id : {id_a, id_b}) {
    const std::vector<fs::path> snapshots = sorted_snapshots(out / id);
    ASSERT_GE(snapshots.size(), 2u);
    std::size_t prev = 0;
    for (const fs::path& snapshot : snapshots) {
      const std::size_t sessions = sessions_in_json(read_file(snapshot));
      EXPECT_GE(sessions, prev) << snapshot;
      EXPECT_LT(sessions, 6u) << "snapshots are strictly partial";
      prev = sessions;
    }
  }
  // The canonical spec was persisted alongside the results.
  EXPECT_EQ(read_file(out / id_a / "spec.txt"),
            serialize_campaign_spec(parse_campaign_spec(text_a)));
}

TEST(SessionService, ShardedBaselinesMatchDirectRunCampaign) {
  // A sharded spec with measure_baselines must leave unassigned
  // (design, tiling) pairs unmeasured exactly as run_campaign does, so the
  // service's report stays byte-identical to a direct run of the same
  // sharded spec and a fleet of shards measures each pair once.
  std::ostringstream os;
  os << "emutile-campaign v1\n"
     << "design 9sym\n"
     << "error_kind wrong-polarity\n"
     << "tiling 6 0.3 1 12 4\n"
     << "tiling 8 0.3 1 12 4\n"
     << "sessions_per_scenario 1\n"
     << "master_seed 77\n"
     << "num_patterns 96\n"
     << "measure_baselines 1\n"
     << "shard 1 2\n"
     << "end\n";
  const std::string text = os.str();

  ScratchDir scratch("service-shard");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  config.enable_cache = false;  // compare two fresh runs
  std::string id;
  {
    SessionService service(config);
    id = service.submit_text(text, 0, "shard1");
    service.wait(id);
    const auto status = service.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, CampaignState::kFinished) << status->error;
  }
  const CampaignReport direct = run_campaign(parse_campaign_spec(text));
  EXPECT_EQ(read_file(scratch.path / "out" / id / "report.json"),
            direct.to_json());
  EXPECT_EQ(read_file(scratch.path / "out" / id / "report.csv"),
            direct.to_csv());
}

TEST(SessionService, SpoolIntakeAcceptsValidAndRejectsMalformedSpecs) {
  ScratchDir scratch("service-spool");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;  // final report only
  SessionService service(config);

  EXPECT_EQ(service.poll_spool(), 0u);  // empty spool is fine

  std::ofstream(scratch.path / "spool" / "good.spec")
      << small_spec_text("9sym", 5);
  std::ofstream(scratch.path / "spool" / "bad.spec") << "not a spec\n";
  std::ofstream(scratch.path / "spool" / "ignored.txt") << "not .spec\n";

  EXPECT_EQ(service.poll_spool(), 1u);
  service.drain();

  const std::vector<CampaignStatus> all = service.list();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].state, CampaignState::kFinished) << all[0].error;
  EXPECT_EQ(all[0].id.rfind("good-", 0), 0u) << all[0].id;
  EXPECT_TRUE(fs::exists(all[0].out_dir / "report.json"));

  // Accepted specs are archived, malformed ones rejected with a reason.
  EXPECT_FALSE(fs::exists(scratch.path / "spool" / "good.spec"));
  EXPECT_TRUE(fs::exists(scratch.path / "spool" / "archive" / "good.spec"));
  EXPECT_TRUE(fs::exists(scratch.path / "spool" / "rejected" / "bad.spec"));
  const std::string reason =
      read_file(scratch.path / "spool" / "rejected" / "bad.error");
  EXPECT_NE(reason.find("emutile-campaign"), std::string::npos) << reason;
  EXPECT_TRUE(fs::exists(scratch.path / "spool" / "ignored.txt"));
  EXPECT_EQ(service.poll_spool(), 0u) << "spool files are consumed once";
}

TEST(SessionService, CancelStopsACampaignAndAccountsForEverySession) {
  ScratchDir scratch("service-cancel");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 1;
  SessionService service(config);

  // Plenty of sessions so cancellation lands mid-campaign.
  std::ostringstream spec;
  spec << "emutile-campaign v1\ndesign 9sym\nerror_kind wrong-polarity\n"
       << "tiling 6 0.3 1 12 4\nsessions_per_scenario 12\nmaster_seed 3\n"
       << "num_patterns 96\nend\n";
  const std::string id = service.submit_text(spec.str(), 0, "doomed");
  EXPECT_TRUE(service.cancel(id));
  EXPECT_FALSE(service.cancel("no-such-campaign"));
  service.wait(id);

  const auto status = service.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, CampaignState::kCancelled);
  EXPECT_EQ(status->sessions_done, status->sessions_total)
      << "every session must be accounted for, cancelled or not";
  // The report still exists and counts the cancelled sessions.
  const std::string json = read_file(status->out_dir / "report.json");
  EXPECT_NE(json.find("\"cancelled\": "), std::string::npos);
}

TEST(SessionService, EndpointSpeaksTheLineProtocol) {
  ScratchDir scratch("service-socket");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");

  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "PING\n"), "OK pong\n");
  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "BOGUS\n"),
            "ERR unknown command 'BOGUS'\n");
  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "STATUS nope\n"),
            "ERR unknown campaign 'nope'\n");

  // One-session campaign over the socket.
  std::ostringstream request;
  request << "SUBMIT 0 sock\n"
          << "emutile-campaign v1\ndesign 9sym\nerror_kind wrong-polarity\n"
          << "tiling 6 0.3 1 12 4\nsessions_per_scenario 1\nmaster_seed 8\n"
          << "num_patterns 96\nend\n";
  const std::string submitted =
      endpoint_request(endpoint.socket_path(), request.str());
  ASSERT_EQ(submitted.rfind("OK sock-", 0), 0u) << submitted;
  const std::string id = submitted.substr(3, submitted.find('\n') - 3);

  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "WAIT " + id + "\n"),
            "OK finished\n");
  const std::string status =
      endpoint_request(endpoint.socket_path(), "STATUS " + id + "\n");
  EXPECT_NE(status.find("finished 1/1"), std::string::npos) << status;
  const std::string list = endpoint_request(endpoint.socket_path(), "LIST\n");
  EXPECT_EQ(list.rfind("OK 1\n", 0), 0u) << list;
  EXPECT_NE(list.find(id), std::string::npos) << list;

  // Malformed submissions answer ERR without wedging the daemon.
  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "SUBMIT 0 bad\njunk\n")
                .rfind("ERR ", 0),
            0u);

  EXPECT_FALSE(endpoint.shutdown_requested());
  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "SHUTDOWN\n"),
            "OK bye\n");
  EXPECT_TRUE(endpoint.shutdown_requested());
}

TEST(SessionService, ShardReportAndCacheCommandsServeTheCoordinator) {
  ScratchDir scratch("service-shardreport");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");
  const std::string text = small_spec_text("9sym", 13);

  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "SHARDREPORT nope\n"),
            "ERR unknown campaign 'nope'\n");

  const std::string id = service.submit_text(text, 0, "shardy");
  service.wait(id);

  // The mergeable form comes back over the wire and parses to the exact
  // presentation bytes of a direct run of the same spec.
  const std::string response =
      endpoint_request(endpoint.socket_path(), "SHARDREPORT " + id + "\n");
  ASSERT_EQ(response.rfind("OK " + id + "\n", 0), 0u) << response;
  const CampaignReport fetched =
      parse_campaign_report(response.substr(response.find('\n') + 1));
  const CampaignReport direct = run_campaign(parse_campaign_spec(text));
  EXPECT_EQ(fetched.to_json(), direct.to_json());
  EXPECT_EQ(fetched.to_csv(), direct.to_csv());

  // CACHE reports entry count, bytes, and hit/miss counters since start.
  const std::string cache =
      endpoint_request(endpoint.socket_path(), "CACHE\n");
  ASSERT_EQ(cache.rfind("OK entries=", 0), 0u) << cache;
  std::size_t entries = 0, bytes = 0, hits = 0, misses = 0, stores = 0;
  ASSERT_EQ(std::sscanf(cache.c_str(),
                        "OK entries=%zu bytes=%zu hits=%zu misses=%zu "
                        "stores=%zu",
                        &entries, &bytes, &hits, &misses, &stores),
            5)
      << cache;
  EXPECT_EQ(entries, 6u);  // six sessions memoized
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(misses, 6u);
  EXPECT_EQ(stores, 6u);

  // A cache-disabled daemon answers ERR rather than inventing numbers.
  ServiceConfig no_cache = config;
  no_cache.root = scratch.path / "nocache";
  no_cache.enable_cache = false;
  SessionService uncached(no_cache);
  ServiceEndpoint uncached_endpoint(uncached,
                                    no_cache.root / "serviced.sock");
  EXPECT_EQ(endpoint_request(uncached_endpoint.socket_path(), "CACHE\n")
                .rfind("ERR ", 0),
            0u);
}

TEST(SessionService, BoundedSubmitQueueRejectsWithBusy) {
  ScratchDir scratch("service-busy");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 1;
  config.snapshot_every = 0;
  config.max_pending = 1;  // one campaign in flight at a time
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");

  // Occupy the single queue slot with a slow campaign.
  std::ostringstream slow;
  slow << "emutile-campaign v1\ndesign 9sym\nerror_kind wrong-polarity\n"
       << "tiling 6 0.3 1 12 4\nsessions_per_scenario 12\nmaster_seed 9\n"
       << "num_patterns 96\nend\n";
  const std::string id = service.submit_text(slow.str(), 0, "hog");

  // Direct API: ServiceBusyError; the spec was not accepted.
  EXPECT_THROW(
      static_cast<void>(service.submit_text(small_spec_text("9sym", 1))),
      ServiceBusyError);

  // Wire protocol: a distinguished `ERR busy` first token.
  std::ostringstream request;
  request << "SUBMIT 0 rejected\n" << small_spec_text("9sym", 2);
  const std::string response =
      endpoint_request(endpoint.socket_path(), request.str());
  EXPECT_EQ(response.rfind("ERR busy", 0), 0u) << response;
  EXPECT_EQ(service.list().size(), 1u)
      << "the rejected spec must not occupy a campaign slot";

  // Spool intake during busy leaves the spec in place for the next poll —
  // busy means "later", never "rejected".
  std::ofstream(scratch.path / "spool" / "patient.spec")
      << small_spec_text("9sym", 4);
  EXPECT_EQ(service.poll_spool(), 0u);
  EXPECT_TRUE(fs::exists(scratch.path / "spool" / "patient.spec"))
      << "a busy queue must not consume or reject spooled specs";
  EXPECT_FALSE(fs::exists(scratch.path / "spool" / "rejected" /
                          "patient.spec"));

  // Once the hog drains, the queue accepts again.
  service.wait(id);
  EXPECT_EQ(service.poll_spool(), 1u)
      << "the retained spool spec must be accepted after the queue drains";
  EXPECT_TRUE(
      fs::exists(scratch.path / "spool" / "archive" / "patient.spec"));
  service.drain();  // free the single slot again
  const std::string ok_id = service.submit_text(small_spec_text("9sym", 3));
  service.wait(ok_id);
  const auto status = service.status(ok_id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, CampaignState::kFinished) << status->error;
}

TEST(SessionService, QosAdmissionShedsOverQuotaAndPastDeadlineSubmits) {
  ScratchDir scratch("service-qos");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  config.session_quota = 4;  // small_spec_text expands to 6 sessions
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");
  const ServiceClient client(endpoint.socket_path());

  // Over-quota specs are shed up front: ServiceBusyError on the direct API,
  // a distinguished `ERR busy` first token on the wire, ServiceError{kBusy}
  // from the typed client — and no campaign slot consumed.
  EXPECT_THROW(
      static_cast<void>(service.submit_text(small_spec_text("9sym", 1))),
      ServiceBusyError);
  std::ostringstream over_quota;
  over_quota << "SUBMIT 0 hefty\n" << small_spec_text("9sym", 2);
  const std::string response =
      endpoint_request(endpoint.socket_path(), over_quota.str());
  EXPECT_EQ(response.rfind("ERR busy", 0), 0u) << response;
  try {
    static_cast<void>(client.submit(small_spec_text("9sym", 2)));
    FAIL() << "expected ServiceError{kBusy}";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceErrorCode::kBusy) << e.what();
  }
  EXPECT_EQ(service.list().size(), 0u);

  // A within-quota spec sails through and its report stays byte-identical
  // to a direct run — admission must never perturb accepted work.
  std::ostringstream small;
  small << "emutile-campaign v1\ndesign 9sym\nerror_kind wrong-polarity\n"
        << "tiling 6 0.3 1 12 4\nsessions_per_scenario 1\nmaster_seed 8\n"
        << "num_patterns 96\nend\n";
  const std::string ok_id = client.submit(small.str(), 0, "fits");
  EXPECT_EQ(client.wait(ok_id), "finished");

  // Deadline admission engages once >= 20 session-wall samples exist. Prime
  // the histogram with absurdly slow sessions so any sane deadline is
  // infeasible for a multi-session spec.
  MetricHistogram& wall =
      MetricsRegistry::global().histogram("session.wall_us");
  for (int i = 0; i < 24; ++i) wall.record(60'000'000);  // "a minute each"
  EXPECT_THROW(static_cast<void>(service.submit_text(
                   small.str(), 0, "", TraceContext{}, /*deadline_ms=*/1)),
               ServiceOverdeadlineError);
  std::ostringstream hopeless;
  hopeless << "SUBMIT 0 hopeless deadline_ms=1\n" << small.str();
  const std::string shed =
      endpoint_request(endpoint.socket_path(), hopeless.str());
  EXPECT_EQ(shed.rfind("ERR overdeadline", 0), 0u) << shed;
  try {
    static_cast<void>(client.submit(small.str(), 0, "hopeless", "", 1));
    FAIL() << "expected ServiceError{kOverdeadline}";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceErrorCode::kOverdeadline) << e.what();
  }
  // A generous deadline is feasible even with the slow history.
  const std::string in_time =
      client.submit(small.str(), 0, "in-time", "", 3'600'000);
  EXPECT_EQ(client.wait(in_time), "finished");
  // Malformed deadline tokens answer ERR instead of being ignored.
  std::ostringstream garbled;
  garbled << "SUBMIT 0 x deadline_ms=soon\n" << small.str();
  EXPECT_EQ(endpoint_request(endpoint.socket_path(), garbled.str())
                .rfind("ERR ", 0),
            0u);

  // Shed SUBMITs are observable, and accepted work stays byte-identical.
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const auto quota_it = snap.counters.find("service.sheds_quota");
  ASSERT_NE(quota_it, snap.counters.end());
  EXPECT_GE(quota_it->second, 3u);  // direct + wire + typed client
  const auto deadline_it = snap.counters.find("service.sheds_overdeadline");
  ASSERT_NE(deadline_it, snap.counters.end());
  EXPECT_GE(deadline_it->second, 3u);
  const CampaignReport direct = run_campaign(parse_campaign_spec(small.str()));
  EXPECT_EQ(read_file(scratch.path / "out" / ok_id / "report.json"),
            direct.to_json());
  EXPECT_EQ(read_file(scratch.path / "out" / in_time / "report.json"),
            direct.to_json());
}

TEST(SessionService, ReactorAndLegacyEndpointsAreByteIdenticalOnTheWire) {
  const std::string text = small_spec_text("9sym", 47);
  std::array<std::string, 2> reports_json;
  std::array<std::string, 2> reports_csv;
  std::array<std::string, 2> waits;
  for (const EndpointMode mode :
       {EndpointMode::kReactor, EndpointMode::kThreadPerConnection}) {
    const bool reactor = mode == EndpointMode::kReactor;
    ScratchDir scratch(reactor ? "service-ab-reactor" : "service-ab-legacy");
    ServiceConfig config;
    config.root = scratch.path;
    config.num_threads = 2;
    config.snapshot_every = 0;
    SessionService service(config);
    EndpointOptions options;
    options.mode = mode;
    ServiceEndpoint endpoint(service, scratch.path / "serviced.sock",
                             options);
    EXPECT_EQ(endpoint.mode(), mode);

    // Identical command surface in both modes.
    EXPECT_EQ(endpoint_request(endpoint.socket_path(), "PING\n"),
              "OK pong\n");
    EXPECT_EQ(endpoint_request(endpoint.socket_path(), "BOGUS\n"),
              "ERR unknown command 'BOGUS'\n");
    EXPECT_EQ(endpoint_request(endpoint.socket_path(), "WAIT\n"),
              "ERR WAIT needs a campaign id\n");
    EXPECT_EQ(endpoint_request(endpoint.socket_path(), "STATUS nope\n"),
              "ERR unknown campaign 'nope'\n");

    std::ostringstream request;
    request << "SUBMIT 0 ab\n" << text;
    const std::string submitted =
        endpoint_request(endpoint.socket_path(), request.str());
    ASSERT_EQ(submitted.rfind("OK ab-", 0), 0u) << submitted;
    const std::string id = submitted.substr(3, submitted.find('\n') - 3);
    const std::size_t slot = reactor ? 0 : 1;
    waits[slot] =
        endpoint_request(endpoint.socket_path(), "WAIT " + id + "\n");
    reports_json[slot] = read_file(scratch.path / "out" / id / "report.json");
    reports_csv[slot] = read_file(scratch.path / "out" / id / "report.csv");
  }
  EXPECT_EQ(waits[0], "OK finished\n");
  EXPECT_EQ(waits[0], waits[1]);
  EXPECT_EQ(reports_json[0], reports_json[1])
      << "the endpoint mode must never leak into campaign results";
  EXPECT_EQ(reports_csv[0], reports_csv[1]);
  const CampaignReport direct = run_campaign(parse_campaign_spec(text));
  EXPECT_EQ(reports_json[0], direct.to_json());
}

TEST(SessionService, ReactorServesManyConcurrentClientsAndParkedWaits) {
  ScratchDir scratch("service-reactor-many");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);
  EndpointOptions options;
  options.workers = 2;  // far fewer workers than concurrent WAITs: parking
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock", options);

  const std::string id =
      service.submit_text(small_spec_text("9sym", 19), 0, "awaited");

  // 24 clients WAIT on the campaign while 24 more hammer PING/LIST — with
  // 2 workers this only completes if WAITs park instead of pinning workers.
  std::atomic<int> wait_ok{0};
  std::atomic<int> ping_ok{0};
  std::vector<std::thread> clients;
  clients.reserve(48);
  for (int i = 0; i < 24; ++i)
    clients.emplace_back([&] {
      if (endpoint_request(endpoint.socket_path(), "WAIT " + id + "\n") ==
          "OK finished\n")
        wait_ok.fetch_add(1);
    });
  for (int i = 0; i < 24; ++i)
    clients.emplace_back([&] {
      for (int j = 0; j < 8; ++j)
        if (endpoint_request(endpoint.socket_path(), "PING\n") ==
            "OK pong\n")
          ping_ok.fetch_add(1);
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(wait_ok.load(), 24);
  EXPECT_EQ(ping_ok.load(), 24 * 8);
}

TEST(SessionService, EndpointLeaksNoFileDescriptorsInEitherMode) {
  const auto open_fds = [] {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& entry :
         fs::directory_iterator("/proc/self/fd"))
      ++n;
    return n;
  };
  for (const EndpointMode mode :
       {EndpointMode::kReactor, EndpointMode::kThreadPerConnection}) {
    ScratchDir scratch(mode == EndpointMode::kReactor ? "service-fd-reactor"
                                                      : "service-fd-legacy");
    ServiceConfig config;
    config.root = scratch.path;
    config.num_threads = 1;
    config.snapshot_every = 0;
    SessionService service(config);
    const std::size_t before = open_fds();
    {
      EndpointOptions options;
      options.mode = mode;
      ServiceEndpoint endpoint(service, scratch.path / "serviced.sock",
                               options);
      std::vector<std::thread> clients;
      for (int i = 0; i < 8; ++i)
        clients.emplace_back([&] {
          for (int j = 0; j < 16; ++j)
            static_cast<void>(
                endpoint_request(endpoint.socket_path(), "PING\n"));
        });
      for (std::thread& t : clients) t.join();
    }
    EXPECT_EQ(open_fds(), before)
        << "endpoint mode " << static_cast<int>(mode)
        << " leaked file descriptors";
  }
}

// ---------------------------------------------------------- observability ---

TEST(SessionService, MetricsCommandExposesLiveSeries) {
  ScratchDir scratch("service-metrics");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");

  // Drive real traffic through every instrumented layer first.
  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "PING\n"), "OK pong\n");
  const std::string id = service.submit_text(small_spec_text("9sym", 55));
  service.wait(id);

  const std::string response =
      endpoint_request(endpoint.socket_path(), "METRICS\n");
  ASSERT_EQ(response.rfind("OK text\n", 0), 0u) << response;
  const MetricsSnapshot snap =
      parse_metrics_text(response.substr(response.find('\n') + 1));

  // The process-wide registry accumulates across the whole test binary, so
  // assert presence and non-zero activity rather than exact totals.
  ASSERT_TRUE(snap.counters.count("endpoint.requests.PING"));
  EXPECT_GT(snap.counters.at("endpoint.requests.PING"), 0u);
  ASSERT_TRUE(snap.histograms.count("endpoint.request_us.PING"));
  EXPECT_GT(snap.histograms.at("endpoint.request_us.PING").count, 0u);
  ASSERT_TRUE(snap.counters.count("service.sessions_completed"));
  EXPECT_GE(snap.counters.at("service.sessions_completed"), 6u);
  ASSERT_TRUE(snap.histograms.count("session.wall_us"));
  EXPECT_GT(snap.histograms.at("session.wall_us").count, 0u);
  EXPECT_GT(snap.histograms.at("session.wall_us").sum, 0u);
  ASSERT_TRUE(snap.histograms.count("scheduler.ticket_wait_us"));
  EXPECT_GT(snap.histograms.at("scheduler.ticket_wait_us").count, 0u);
  ASSERT_TRUE(snap.counters.count("result_cache.misses"));
  EXPECT_GT(snap.counters.at("result_cache.misses"), 0u);
  ASSERT_TRUE(snap.counters.count("result_cache.stores"));
  // Every phase histogram of the session pipeline is populated.
  for (const char* phase : {"inject", "build", "detect", "localize",
                            "correct", "verify"}) {
    const std::string name = std::string("session.phase_us.") + phase;
    ASSERT_TRUE(snap.histograms.count(name)) << name;
    EXPECT_GT(snap.histograms.at(name).count, 0u) << name;
  }

  // JSON exposition and the format error path.
  const std::string json_response =
      endpoint_request(endpoint.socket_path(), "METRICS json\n");
  ASSERT_EQ(json_response.rfind("OK json\n", 0), 0u) << json_response;
  EXPECT_NE(json_response.find("\"session.wall_us\""), std::string::npos);
  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "METRICS xml\n")
                .rfind("ERR ", 0),
            0u);

  // ServiceClient's typed wrapper strips the framing line.
  const ServiceClient client(endpoint.socket_path());
  const MetricsSnapshot via_client = parse_metrics_text(client.fetch_metrics());
  EXPECT_GE(via_client.counters.at("endpoint.requests.METRICS"), 1u);
}

TEST(SessionService, StatusCarriesDaemonLevelFields) {
  ScratchDir scratch("service-status-daemon");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");

  const std::string id = service.submit_text(small_spec_text("9sym", 71));
  service.wait(id);

  const std::string status =
      endpoint_request(endpoint.socket_path(), "STATUS " + id + "\n");
  EXPECT_NE(status.find(" uptime_s="), std::string::npos) << status;
  EXPECT_NE(status.find(" queued="), std::string::npos) << status;
  EXPECT_NE(status.find(" running="), std::string::npos) << status;

  const ServiceClient client(endpoint.socket_path());
  const RemoteCampaignStatus parsed = client.status(id);
  EXPECT_EQ(parsed.state, "finished");
  EXPECT_EQ(parsed.daemon_queued + parsed.daemon_running, 0u)
      << "a drained daemon has nothing queued or running";
}

TEST(SessionService, EventJournalRecordsTheCampaignLifecycle) {
  ScratchDir scratch("service-journal");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  std::string id, again;
  {
    SessionService service(config);
    id = service.submit_text(small_spec_text("9sym", 91), 2, "journaled");
    service.wait(id);
    again = service.submit_text(small_spec_text("9sym", 91), 0, "rerun");
    service.wait(again);
  }

  const std::string journal =
      read_file(scratch.path / "out" / id / "events.jsonl");
  for (const char* event : {"\"event\":\"submit\"", "\"event\":\"schedule\"",
                            "\"event\":\"session-start\"",
                            "\"event\":\"session-done\"",
                            "\"event\":\"finalize\""}) {
    EXPECT_NE(journal.find(event), std::string::npos)
        << event << " missing from:\n" << journal;
  }
  EXPECT_NE(journal.find("\"campaign\":\"" + id + "\""), std::string::npos);
  EXPECT_NE(journal.find("\"priority\":2"), std::string::npos) << journal;
  EXPECT_NE(journal.find("\"state\":\"finished\""), std::string::npos);
  // The cache-served rerun logs its hits.
  const std::string rerun_journal =
      read_file(scratch.path / "out" / again / "events.jsonl");
  EXPECT_NE(rerun_journal.find("\"event\":\"cache-hit\""), std::string::npos)
      << rerun_journal;

  // The journal is an audit artifact, never part of the deterministic
  // outputs: disabling it changes nothing about the report bytes.
  ServiceConfig silent = config;
  silent.root = scratch.path / "silent";
  silent.enable_journal = false;
  std::string silent_id;
  {
    SessionService service(silent);
    silent_id = service.submit_text(small_spec_text("9sym", 91));
    service.wait(silent_id);
  }
  EXPECT_FALSE(
      fs::exists(silent.root / "out" / silent_id / "events.jsonl"));
  EXPECT_EQ(read_file(silent.root / "out" / silent_id / "report.json"),
            read_file(scratch.path / "out" / id / "report.json"))
      << "journal on/off must not perturb deterministic artifacts";
}

#ifndef EMUTILE_METRICS_DISABLED

TEST(SessionService, SubmitTraceparentPropagatesThroughToCampaignSpans) {
  ScratchDir scratch("service-traceparent");
  Tracer::global().reset();
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");

  // Submit with an explicit upstream context, the way a coordinator does.
  const TraceContext upstream{0x00c0ffee00c0ffeeull, 0x1234123412341234ull};
  const ServiceClient client(endpoint.socket_path());
  const std::string id =
      client.submit(small_spec_text("9sym", 55), 0, "traced",
                    format_traceparent(upstream));
  static_cast<void>(client.wait(id));

  // TRACESPANS serves the instance's buffer; the submitted trace must hold
  // the whole chain: request -> campaign -> queue wait -> session -> phases.
  const RemoteTraceSpans remote = client.fetch_trace_spans();
  EXPECT_GT(remote.now_us, 0u);
  std::vector<TraceSpan> trace;
  for (const TraceSpan& span : remote.spans)
    if (span.trace_id == upstream.trace_id && !span.open)
      trace.push_back(span);
  ASSERT_FALSE(trace.empty());

  const auto find_span = [&](const std::string& name) {
    return std::find_if(trace.begin(), trace.end(), [&](const TraceSpan& s) {
      return s.name == name;
    });
  };
  const auto request = find_span("endpoint.request.SUBMIT");
  ASSERT_NE(request, trace.end());
  EXPECT_EQ(request->parent_id, upstream.span_id)
      << "the request span must hang off the submitted traceparent";
  const auto campaign = find_span("campaign.run");
  ASSERT_NE(campaign, trace.end());
  EXPECT_EQ(campaign->parent_id, request->span_id);
  const auto session = find_span("session.run");
  ASSERT_NE(session, trace.end());
  EXPECT_EQ(session->parent_id, campaign->span_id);
  EXPECT_NE(find_span("scheduler.queue_wait"), trace.end());
  EXPECT_NE(find_span("session.phase.build"), trace.end());

  // No orphans: every nonzero parent inside the trace resolves, except the
  // upstream span the test invented (the submitter's side of the tree).
  std::set<std::uint64_t> ids;
  for (const TraceSpan& span : trace) ids.insert(span.span_id);
  for (const TraceSpan& span : trace)
    if (span.parent_id != 0 && span.parent_id != upstream.span_id)
      EXPECT_TRUE(ids.count(span.parent_id))
          << span.name << " has an orphan parent";

  // The campaign's own trace.json sidecar loads as Chrome trace-event JSON.
  const std::string trace_json =
      read_file(scratch.path / "out" / id / "trace.json");
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"campaign.run\""), std::string::npos);

  // Journal records carry the schema version and the campaign's trace id.
  const std::string journal =
      read_file(scratch.path / "out" / id / "events.jsonl");
  EXPECT_NE(journal.find("\"schema\":1"), std::string::npos) << journal;
  EXPECT_NE(journal.find("\"trace_id\":\"00c0ffee00c0ffee\""),
            std::string::npos)
      << journal;
}

TEST(SessionService, SpoolTraceparentCommentJoinsTheTraceWithoutChangingSpec) {
  ScratchDir scratch("service-spool-trace");
  Tracer::global().reset();
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);

  const TraceContext upstream{0x0badc0de0badc0deull, 0x5678567856785678ull};
  const std::string text = small_spec_text("9sym", 61);
  EXPECT_EQ(extract_traceparent(
                prepend_traceparent(text, format_traceparent(upstream))),
            format_traceparent(upstream));
  EXPECT_EQ(prepend_traceparent(text, ""), text);
  static_cast<void>(spool_submit_spec(
      scratch.path, "spooled",
      prepend_traceparent(text, format_traceparent(upstream))));
  ASSERT_EQ(service.poll_spool(), 1u);
  service.drain();

  const auto statuses = service.list();
  ASSERT_EQ(statuses.size(), 1u);
  // The canonical spec.txt never carries the traceparent comment — content
  // hashes and cache keys see the same bytes either way.
  const std::string canonical =
      read_file(statuses[0].out_dir / "spec.txt");
  EXPECT_EQ(canonical.find("traceparent"), std::string::npos);

  const std::vector<TraceSpan> trace =
      Tracer::global().collect_trace(upstream.trace_id, false);
  ASSERT_FALSE(trace.empty());
  const auto campaign = std::find_if(
      trace.begin(), trace.end(),
      [](const TraceSpan& s) { return s.name == "campaign.run"; });
  ASSERT_NE(campaign, trace.end());
  EXPECT_EQ(campaign->parent_id, upstream.span_id);
}

TEST(SessionService, SlowRequestsWarnAndCount) {
  ScratchDir scratch("service-slow-request");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");
  endpoint.set_slow_request_ms(0);  // any measurable request trips it

  const std::uint64_t before =
      MetricsRegistry::global().counter("endpoint.slow_requests").value();
  // SUBMIT parses a spec and WAIT blocks on the campaign — both take
  // measurably longer than the zero threshold.
  const ServiceClient client(endpoint.socket_path());
  const std::string id = client.submit(small_spec_text("9sym", 77), 0, "slow");
  static_cast<void>(client.wait(id));
  const std::uint64_t after =
      MetricsRegistry::global().counter("endpoint.slow_requests").value();
  EXPECT_GT(after, before);
}

#endif  // EMUTILE_METRICS_DISABLED

TEST(SessionService, TracingOnOffNeverPerturbsDeterministicArtifacts) {
  // The same campaign submitted with and without an upstream trace context
  // must produce byte-identical reports — traces are sidecars. (Under
  // EMUTILE_METRICS_DISABLED this degenerates to two identical runs, which
  // certifies the compiled-out path the same way.)
  ScratchDir scratch("service-trace-determinism");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);

  const std::string text = small_spec_text("styr", 83);
  const std::string traced_id = service.submit_text(
      text, 0, "with-trace", Tracer::global().child_context({}));
  service.wait(traced_id);
  const std::string plain_id =
      service.submit_text(text, 0, "no-trace", TraceContext{});
  service.wait(plain_id);

  const auto traced = service.status(traced_id);
  const auto plain = service.status(plain_id);
  ASSERT_TRUE(traced.has_value());
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(read_file(traced->out_dir / "report.json"),
            read_file(plain->out_dir / "report.json"));
  EXPECT_EQ(read_file(traced->out_dir / "report.csv"),
            read_file(plain->out_dir / "report.csv"));
  // Every campaign gets a trace (the service mints one when the submitter
  // brings none), so the sidecar exists exactly when tracing is compiled in.
  EXPECT_EQ(fs::exists(traced->out_dir / "trace.json"), Tracer::enabled());
  EXPECT_EQ(fs::exists(plain->out_dir / "trace.json"), Tracer::enabled());
}

// ------------------------------------------------------ HELLO + transport ---

TEST(SessionService, HelloAdvertisesProtocolAndTransportCaps) {
  ScratchDir scratch("service-hello");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 1;
  SessionService service(config);

  EndpointOptions options;
  options.mode = EndpointMode::kReactor;
  options.tcp = ServiceAddress::tcp("127.0.0.1", 0);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock", options);

  // Raw grammar on the Unix socket: proto, stable id, mode, caps in order.
  const std::string reply =
      endpoint_request(endpoint.socket_path(), "HELLO\n");
  EXPECT_EQ(reply, "OK proto=2 id=" + endpoint.instance_id() +
                       " mode=reactor caps=oneshot,persist,tcp\n");

  // The same daemon answers identically over its TCP listener.
  ASSERT_TRUE(endpoint.tcp_address().has_value());
  EXPECT_NE(endpoint.tcp_address()->port, 0);
  EXPECT_EQ(endpoint_request(*endpoint.tcp_address(), "HELLO\n"), reply);

  // ServiceClient parses the reply into the typed ServiceHello.
  ServiceClient client(*endpoint.tcp_address());
  const ServiceHello& hello = client.hello();
  EXPECT_TRUE(hello.supported);
  EXPECT_EQ(hello.proto, 2);
  EXPECT_EQ(hello.id, endpoint.instance_id());
  EXPECT_EQ(hello.mode, "reactor");
  EXPECT_TRUE(hello.has_cap("oneshot"));
  EXPECT_TRUE(hello.has_cap("persist"));
  EXPECT_TRUE(hello.has_cap("tcp"));
  EXPECT_FALSE(hello.has_cap("warp-drive"));

  // Legacy mode: no reactor, no TCP — caps shrink to the one-shot baseline.
  ServiceConfig legacy_config;
  legacy_config.root = scratch.path / "legacy";
  legacy_config.num_threads = 1;
  SessionService legacy_service(legacy_config);
  EndpointOptions legacy_options;
  legacy_options.mode = EndpointMode::kThreadPerConnection;
  ServiceEndpoint legacy(legacy_service, legacy_config.root / "serviced.sock",
                         legacy_options);
  EXPECT_EQ(endpoint_request(legacy.socket_path(), "HELLO\n"),
            "OK proto=2 id=" + legacy.instance_id() +
                " mode=legacy caps=oneshot\n");
}

TEST(SessionService, HelloDegradesGracefullyAgainstPreV2Daemons) {
  ScratchDir scratch("service-hello-fallback");
  const fs::path sock = scratch.path / "old-daemon.sock";

  // A minimal pre-HELLO daemon: answers PING, rejects HELLO the way the
  // v1 line protocol did — `ERR unknown command` — and nothing else.
  const ServiceAddress addr = ServiceAddress::unix_socket(sock);
  const int listen_fd =
      listen_service_address(addr, /*backlog=*/4, /*nonblocking=*/true);
  std::atomic<bool> stop{false};
  std::thread old_daemon([listen_fd, &stop] {
    while (!stop.load()) {
      const int conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      std::string request;
      fd_read_all(conn, request, /*timeout_ms=*/5'000);
      if (request.rfind("PING", 0) == 0)
        fd_write_all(conn, "OK pong\n");
      else
        fd_write_all(conn, "ERR unknown command 'HELLO'\n");
      ::close(conn);
    }
  });

  ServiceClient client(addr, /*timeout_ms=*/5'000);
  client.set_persistent(true);  // must silently stay one-shot on a v1 daemon
  EXPECT_FALSE(client.hello().supported);
  EXPECT_EQ(client.hello().proto, 1);
  // The probe must not poison the client: v1 commands still work.
  EXPECT_TRUE(client.ping());

  stop.store(true);
  old_daemon.join();
  ::close(listen_fd);

  // A dead address also reads as "not supported", never a throw.
  ServiceClient dead(ServiceAddress::unix_socket(scratch.path / "no.sock"),
                     /*timeout_ms=*/500);
  EXPECT_FALSE(dead.hello().supported);
  EXPECT_FALSE(dead.ping());
}

TEST(SessionService, PersistentClientReusesOneConnection) {
  ScratchDir scratch("service-persistent");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);

  EndpointOptions options;
  options.mode = EndpointMode::kReactor;
  auto endpoint = std::make_unique<ServiceEndpoint>(
      service, scratch.path / "serviced.sock", options);

#ifndef EMUTILE_METRICS_DISABLED
  const std::uint64_t handshakes_before =
      MetricsRegistry::global().counter("endpoint.persistent").value();
#endif

  ServiceClient client(ServiceAddress::unix_socket(endpoint->socket_path()));
  client.set_persistent(true);
  const std::string id = client.submit(small_spec_text("9sym", 412));
  EXPECT_EQ(client.wait(id), "finished");

  // Many single-line exchanges: all should ride one persistent channel and
  // return exactly what one-shot connections return.
  for (int i = 0; i < 5; ++i) {
    const RemoteCampaignStatus status = client.status(id);
    EXPECT_EQ(status.state, "finished");
    EXPECT_EQ(status.sessions_done, status.sessions_total);
  }
  ServiceClient oneshot(ServiceAddress::unix_socket(endpoint->socket_path()));
  EXPECT_EQ(client.list(), oneshot.list());

#ifndef EMUTILE_METRICS_DISABLED
  EXPECT_EQ(
      MetricsRegistry::global().counter("endpoint.persistent").value(),
      handshakes_before + 1)
      << "five STATUS + one LIST should share a single PERSIST handshake";
#endif

  // Kill the daemon out from under the channel: the client must surface a
  // kIo ServiceError (the coordinator's instance-death signal), not hang.
  endpoint.reset();
  try {
    static_cast<void>(client.status(id));
    FAIL() << "expected ServiceError against a dead daemon";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceErrorCode::kIo) << e.what();
  }
}

}  // namespace
}  // namespace emutile
