// Technology mapping and packing tests: semantics preservation and
// structural invariants of the CLB packing.

#include <gtest/gtest.h>

#include "synth/lut_mapper.hpp"
#include "synth/packer.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

TEST(LutMapper, DecomposesWideFunctions) {
  Netlist nl;
  const Bus in = b_inputs(nl, "i", 6);
  const CellId wide = nl.add_lut("wide", TruthTable::xor_all(6), in);
  nl.add_output("y", nl.cell_output(wide));

  const auto before = test::run_patterns(nl, exhaustive_patterns(6));
  const MapReport report = map_to_luts(nl);
  EXPECT_EQ(report.luts_decomposed, 1u);
  for (CellId id : nl.live_cells())
    if (nl.cell(id).kind == CellKind::kLut)
      EXPECT_LE(nl.cell(id).function.num_inputs(), 4);
  EXPECT_EQ(test::run_patterns(nl, exhaustive_patterns(6)), before);
}

TEST(LutMapper, DecomposePreservesRandomFunctions) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Netlist nl;
    const int width = 5 + static_cast<int>(rng.next_below(4));  // 5..8
    const Bus in = b_inputs(nl, "i", width);
    TruthTable tt(width);
    for (unsigned m = 0; m < tt.num_minterms(); ++m)
      tt.set_bit(m, rng.next_bool(0.5));
    nl.add_output("y", nl.cell_output(nl.add_lut("f", tt, in)));
    const auto patterns = exhaustive_patterns(static_cast<std::size_t>(width));
    const auto before = test::run_patterns(nl, patterns);
    map_to_luts(nl);
    EXPECT_EQ(test::run_patterns(nl, patterns), before) << "width " << width;
  }
}

TEST(LutMapper, FoldConstantsSimplifies) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId k1 = nl.add_const("k1", true);
  const CellId g = nl.add_lut("g", TruthTable::and_all(2),
                              {nl.cell_output(a), nl.cell_output(k1)});
  nl.add_output("y", nl.cell_output(g));
  const MapReport r = fold_constants(nl);
  EXPECT_GE(r.constants_folded, 1u);
  // AND(a, 1) == a: the surviving LUT must be a buffer of `a`.
  bool found_buffer = false;
  for (CellId id : nl.live_cells())
    if (nl.cell(id).kind == CellKind::kLut) {
      EXPECT_EQ(nl.cell(id).function, TruthTable::buffer());
      found_buffer = true;
    }
  EXPECT_TRUE(found_buffer);
}

TEST(LutMapper, ConstantFedDffBecomesConstant) {
  Netlist nl;
  nl.add_input("a");
  const CellId k1 = nl.add_const("k", true);
  const CellId ff = nl.add_dff("ff", nl.cell_output(k1));
  nl.add_output("y", nl.cell_output(ff));
  fold_constants(nl);
  EXPECT_EQ(nl.num_dffs(), 0u);
}

TEST(LutMapper, PruneDeadRemovesUnreachable) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId live =
      nl.add_lut("live", TruthTable::buffer(), {nl.cell_output(a)});
  nl.add_lut("dead", TruthTable::inverter(), {nl.cell_output(a)});
  nl.add_output("y", nl.cell_output(live));
  const MapReport r = prune_dead(nl);
  EXPECT_EQ(r.cells_pruned, 1u);
  EXPECT_EQ(nl.num_luts(), 1u);
}

TEST(LutMapper, SynthesizePipelineEndToEnd) {
  Netlist nl;
  Rng rng(4);
  const Bus in = b_inputs(nl, "i", 7);
  TruthTable tt(7);
  for (unsigned m = 0; m < tt.num_minterms(); ++m)
    tt.set_bit(m, rng.next_bool(0.4));
  nl.add_output("y", nl.cell_output(nl.add_lut("f", tt, in)));
  const auto patterns = exhaustive_patterns(7);
  const auto before = test::run_patterns(nl, patterns);
  synthesize(nl);
  EXPECT_EQ(test::run_patterns(nl, patterns), before);
}

TEST(Packer, PacksAdder) {
  const Netlist nl = test::make_adder4();
  const PackedDesign packed = pack(nl);
  packed.validate(nl);
  // 8 LUTs -> at most 8, at least 4 CLBs.
  EXPECT_LE(packed.num_clbs(), 8u);
  EXPECT_GE(packed.num_clbs(), 4u);
  EXPECT_EQ(packed.num_iobs(), 14u);  // 9 PI + 5 PO
}

TEST(Packer, PairingUsesAffinity) {
  // Two LUTs sharing all inputs should land in one CLB.
  Netlist nl;
  const Bus in = b_inputs(nl, "i", 4);
  const CellId f = nl.add_lut("f", TruthTable::and_all(4), in);
  const CellId g = nl.add_lut("g", TruthTable::or_all(4), in);
  nl.add_output("yf", nl.cell_output(f));
  nl.add_output("yg", nl.cell_output(g));
  const PackedDesign packed = pack(nl);
  EXPECT_EQ(packed.inst_of_cell(f), packed.inst_of_cell(g));
  EXPECT_EQ(packed.num_clbs(), 1u);
}

TEST(Packer, RegistersFfWithDrivingLut) {
  Netlist nl;
  const Bus in = b_inputs(nl, "i", 4);
  const CellId f = nl.add_lut("f", TruthTable::and_all(4), in);
  const CellId ff = nl.add_dff("ff", nl.cell_output(f));
  nl.add_output("q", nl.cell_output(ff));
  const PackedDesign packed = pack(nl);
  packed.validate(nl);
  EXPECT_EQ(packed.inst_of_cell(f), packed.inst_of_cell(ff));
  const Instance& inst = packed.inst(packed.inst_of_cell(f));
  EXPECT_TRUE(inst.ff_f_src == FfSource::kLutF ||
              inst.ff_g_src == FfSource::kLutG ||
              inst.ff_f_src == FfSource::kLutG ||
              inst.ff_g_src == FfSource::kLutF);
}

TEST(Packer, InputDemandNeverExceedsPins) {
  const Netlist nl = test::make_random_netlist(120, 21);
  const PackedDesign packed = pack(nl);
  packed.validate(nl);
  for (InstId id : packed.live_insts())
    if (packed.inst(id).is_clb())
      EXPECT_LE(packed.input_net_demand(nl, id), ClbPinModel::kNumIpins);
}

TEST(Packer, PhysicalNetsExcludeInternalFeeds) {
  Netlist nl;
  const Bus in = b_inputs(nl, "i", 4);
  const CellId f = nl.add_lut("f", TruthTable::and_all(4), in);
  const CellId ff = nl.add_dff("ff", nl.cell_output(f));
  nl.add_output("q", nl.cell_output(ff));
  const PackedDesign packed = pack(nl);
  // The LUT->FF net is internal to the CLB: it must not appear.
  for (const PhysNet& pn : packed.physical_nets(nl))
    EXPECT_NE(pn.net, nl.cell_output(f));
}

TEST(Packer, PhysicalNetSourcePins) {
  const Netlist nl = test::make_seq4();
  Netlist mapped = nl;
  synthesize(mapped);
  const PackedDesign packed = pack(mapped);
  packed.validate(mapped);
  for (const PhysNet& pn : packed.physical_nets(mapped)) {
    const auto [inst, opin] = packed.source_pin(mapped, pn.net);
    EXPECT_EQ(inst, pn.src_inst);
    EXPECT_EQ(opin, pn.src_opin);
    EXPECT_GE(opin, 0);
    EXPECT_LT(opin, ClbPinModel::kNumOpins);
  }
}

TEST(Packer, IncrementUsesFreshClbs) {
  Netlist nl = test::make_adder4();
  PackedDesign packed = pack(nl);
  const std::size_t before = packed.num_clbs();

  // Add a small cone and pack it incrementally.
  const NetId some = nl.cell_output(nl.primary_inputs()[0]);
  const CellId n1 = nl.add_lut("eco1", TruthTable::inverter(), {some});
  const CellId n2 =
      nl.add_lut("eco2", TruthTable::buffer(), {nl.cell_output(n1)});
  const CellId n3 = nl.add_dff("ecoff", nl.cell_output(n2));
  nl.add_output("eco_q", nl.cell_output(n3));
  // The new PO needs an IOB as well.
  packed.new_iob("iob_eco_q", InstKind::kIobOut, nl.primary_outputs().back());

  const auto created = pack_increment(packed, nl, {n1, n2, n3});
  packed.validate(nl);
  EXPECT_FALSE(created.empty());
  EXPECT_GT(packed.num_clbs(), before - 1);
  for (InstId id : created) EXPECT_TRUE(packed.inst(id).is_clb());
}

TEST(Packer, UnbindAndRemoveIfEmpty) {
  Netlist nl;
  const Bus in = b_inputs(nl, "i", 4);
  const CellId f = nl.add_lut("f", TruthTable::and_all(4), in);
  nl.add_output("y", nl.cell_output(f));
  PackedDesign packed = pack(nl);
  const InstId inst = packed.inst_of_cell(f);
  packed.unbind_cell(f);
  EXPECT_FALSE(packed.inst_of_cell(f).valid());
  packed.remove_if_empty(inst);
  EXPECT_EQ(packed.num_clbs(), 0u);
}

}  // namespace
}  // namespace emutile
