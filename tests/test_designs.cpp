// Benchmark-design generator tests: structural building blocks compute what
// they claim; the paper designs calibrate to Table 1 CLB counts.

#include <gtest/gtest.h>

#include "designs/blocks.hpp"
#include "designs/catalog.hpp"
#include "synth/packer.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

TEST(Blocks, PopcountCorrect) {
  Netlist nl("pc");
  const Bus in = b_inputs(nl, "i", 9);
  const Bus count = b_popcount(nl, in, "pc");
  b_outputs(nl, "c", count);
  synthesize(nl);
  Simulator sim(nl);
  sim.reset();
  for (const Pattern& p : random_patterns(9, 100, 4)) {
    const auto out = sim.step(p);
    unsigned expect = 0;
    for (auto bit : p) expect += bit;
    unsigned got = 0;
    for (std::size_t i = 0; i < out.size(); ++i)
      got |= static_cast<unsigned>(out[i]) << i;
    EXPECT_EQ(got, expect);
  }
}

TEST(Blocks, EqConstAndEqBus) {
  Netlist nl("eq");
  const Bus a = b_inputs(nl, "a", 4);
  const Bus b = b_inputs(nl, "b", 4);
  nl.add_output("is5", b_eq_const(nl, a, 5, "k5"));
  nl.add_output("same", b_eq_bus(nl, a, b, "eq"));
  Simulator sim(nl);
  sim.reset();
  for (const Pattern& p : exhaustive_patterns(8)) {
    const auto out = sim.step(p);
    unsigned av = 0, bv = 0;
    for (int i = 0; i < 4; ++i) {
      av |= static_cast<unsigned>(p[static_cast<std::size_t>(i)]) << i;
      bv |= static_cast<unsigned>(p[static_cast<std::size_t>(4 + i)]) << i;
    }
    EXPECT_EQ(out[0] != 0, av == 5u);
    EXPECT_EQ(out[1] != 0, av == bv);
  }
}

TEST(Blocks, MuxTreeSelects) {
  Netlist nl("mux");
  std::vector<Bus> options;
  for (int k = 0; k < 4; ++k)
    options.push_back(b_inputs(nl, "o" + std::to_string(k) + "_", 2));
  const Bus sel = b_inputs(nl, "s", 2);
  b_outputs(nl, "y", b_mux_tree(nl, options, sel, "mt"));
  Simulator sim(nl);
  sim.reset();
  for (const Pattern& p : exhaustive_patterns(10)) {
    const auto out = sim.step(p);
    const unsigned s = static_cast<unsigned>(p[8]) |
                       (static_cast<unsigned>(p[9]) << 1);
    for (int bit = 0; bit < 2; ++bit)
      EXPECT_EQ(out[static_cast<std::size_t>(bit)],
                p[static_cast<std::size_t>(s * 2 + static_cast<unsigned>(bit))]);
  }
}

TEST(Blocks, SboxMatchesTable) {
  Netlist nl("sbox");
  const Bus in = b_inputs(nl, "i", 6);
  std::array<std::uint8_t, 64> table{};
  for (unsigned i = 0; i < 64; ++i)
    table[i] = static_cast<std::uint8_t>((i * 7 + 3) & 0xF);
  b_outputs(nl, "s", b_sbox(nl, in, table, "sb"));
  synthesize(nl);  // decomposes the 6-input functions
  Simulator sim(nl);
  sim.reset();
  for (const Pattern& p : exhaustive_patterns(6)) {
    const auto out = sim.step(p);
    unsigned idx = 0;
    for (int i = 0; i < 6; ++i)
      idx |= static_cast<unsigned>(p[static_cast<std::size_t>(i)]) << i;
    unsigned got = 0;
    for (int i = 0; i < 4; ++i)
      got |= static_cast<unsigned>(out[static_cast<std::size_t>(i)]) << i;
    EXPECT_EQ(got, table[idx]);
  }
}

TEST(Catalog, HasAllNineDesigns) {
  ASSERT_EQ(paper_designs().size(), 9u);
  EXPECT_STREQ(paper_designs()[0].name, "9sym");
  EXPECT_EQ(paper_design("DES").clbs, 1050);
  EXPECT_EQ(paper_design("s9234").clbs, 235);
  EXPECT_THROW(paper_design("nope"), CheckError);
}

TEST(Catalog, PadToClbsHitsTarget) {
  Netlist nl = test::make_adder4();
  pad_to_clbs(nl, 40, 3, 0.1);
  const std::size_t clbs = pack(nl).num_clbs();
  EXPECT_GE(clbs, 40u);
  EXPECT_LE(clbs, 44u);
  EXPECT_TRUE(outputs_reachable(nl));
}

class SmallDesignTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SmallDesignTest, CalibratesToPaperClbCount) {
  const PaperDesign& spec = paper_design(GetParam());
  const Netlist nl = build_paper_design(GetParam(), 1);
  const std::size_t clbs = pack(nl).num_clbs();
  EXPECT_GE(static_cast<double>(clbs), spec.clbs * 0.98);
  EXPECT_LE(static_cast<double>(clbs), spec.clbs * 1.10);
  // Mapped to 4-LUTs, structurally sound, and alive end to end.
  for (CellId id : nl.live_cells())
    if (nl.cell(id).kind == CellKind::kLut)
      EXPECT_LE(nl.cell(id).function.num_inputs(), 4);
  EXPECT_TRUE(outputs_reachable(nl));
  EXPECT_EQ(nl.num_dffs() > 0, spec.sequential);
}

INSTANTIATE_TEST_SUITE_P(PaperSmall, SmallDesignTest,
                         ::testing::Values("9sym", "styr", "sand", "c499",
                                           "planet1", "c880", "s9234"));

TEST(Designs, NineSymIsSymmetric) {
  const Netlist nl = build_paper_design("9sym", 2);
  // The sym output must be invariant under input permutation. Check pairs
  // of patterns with equal popcount.
  Simulator sim(nl);
  sim.reset();
  const auto out_for = [&](unsigned bits) {
    Pattern p(nl.primary_inputs().size(), 0);
    for (int i = 0; i < 9; ++i) p[static_cast<std::size_t>(i)] = (bits >> i) & 1u;
    return sim.step(p)[0];  // output 0 is "sym"
  };
  EXPECT_EQ(out_for(0b000000111), out_for(0b111000000));
  EXPECT_EQ(out_for(0b000011111), out_for(0b111110000));
  EXPECT_NE(out_for(0b000000000), out_for(0b000001111));  // 0 vs 4 ones
}

TEST(Designs, C499CorrectsSingleBitErrors) {
  const Netlist nl = build_paper_design("c499", 3);
  Simulator sim(nl);
  sim.reset();
  Rng rng(5);
  // With all check bits consistent (zero data, zero checks) outputs follow
  // data; we only verify determinism and width here (the full SEC property
  // is generator-internal).
  Pattern p(nl.primary_inputs().size(), 0);
  const auto o1 = sim.step(p);
  const auto o2 = sim.step(p);
  EXPECT_EQ(o1, o2);
  EXPECT_GE(o1.size(), 20u);  // 20 corrected data lanes + checksum
  (void)rng;
}

TEST(Designs, DeterministicForSeed) {
  const Netlist a = build_paper_design("styr", 7);
  const Netlist b = build_paper_design("styr", 7);
  EXPECT_EQ(a.num_cells(), b.num_cells());
  EXPECT_EQ(a.num_nets(), b.num_nets());
  const auto patterns = random_patterns(a.primary_inputs().size(), 32, 11);
  EXPECT_EQ(test::run_patterns(a, patterns), test::run_patterns(b, patterns));
}

TEST(Designs, LargeDesignsCalibrate) {
  for (const char* name : {"MIPS R2000", "DES"}) {
    const PaperDesign& spec = paper_design(name);
    const Netlist nl = build_paper_design(name, 1);
    const std::size_t clbs = pack(nl).num_clbs();
    EXPECT_GE(static_cast<double>(clbs), spec.clbs * 0.98) << name;
    EXPECT_LE(static_cast<double>(clbs), spec.clbs * 1.10) << name;
  }
}

}  // namespace
}  // namespace emutile
