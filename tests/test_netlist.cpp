// Unit tests: truth tables, netlist editing invariants, structural analyses.

#include <gtest/gtest.h>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/netlist_ops.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace emutile {
namespace {

TEST(TruthTable, VariableProjection) {
  for (int n = 1; n <= 4; ++n) {
    for (int v = 0; v < n; ++v) {
      const TruthTable tt = TruthTable::variable(n, v);
      for (unsigned m = 0; m < tt.num_minterms(); ++m)
        EXPECT_EQ(tt.eval(m), ((m >> v) & 1u) != 0);
    }
  }
}

TEST(TruthTable, ConstantsAndComplement) {
  const TruthTable zero = TruthTable::constant(3, false);
  EXPECT_TRUE(zero.is_constant(false));
  EXPECT_TRUE(zero.complement().is_constant(true));
  EXPECT_EQ(zero.complement().complement(), zero);
}

TEST(TruthTable, AndOrXorSemantics) {
  const TruthTable a3 = TruthTable::and_all(3);
  const TruthTable o3 = TruthTable::or_all(3);
  const TruthTable x3 = TruthTable::xor_all(3);
  for (unsigned m = 0; m < 8; ++m) {
    EXPECT_EQ(a3.eval(m), m == 7u);
    EXPECT_EQ(o3.eval(m), m != 0u);
    EXPECT_EQ(x3.eval(m), (__builtin_popcount(m) & 1) != 0);
  }
}

TEST(TruthTable, Mux21Semantics) {
  const TruthTable mux = TruthTable::mux21();
  for (unsigned m = 0; m < 8; ++m) {
    const bool sel = m & 1u, a = (m >> 1) & 1u, b = (m >> 2) & 1u;
    EXPECT_EQ(mux.eval(m), sel ? b : a);
  }
}

TEST(TruthTable, CofactorReducesArity) {
  const TruthTable x4 = TruthTable::xor_all(4);
  const TruthTable c0 = x4.cofactor(3, false);
  const TruthTable c1 = x4.cofactor(3, true);
  EXPECT_EQ(c0, TruthTable::xor_all(3));
  EXPECT_EQ(c1, TruthTable::xor_all(3).complement());
}

TEST(TruthTable, CofactorMiddleVariable) {
  // f = v1 (projection); cofactor on v0 keeps the projection.
  const TruthTable f = TruthTable::variable(3, 1);
  EXPECT_EQ(f.cofactor(0, false), TruthTable::variable(2, 0));
  EXPECT_EQ(f.cofactor(0, true), TruthTable::variable(2, 0));
  // Cofactor on v1 yields constants.
  EXPECT_TRUE(f.cofactor(1, false).is_constant(false));
  EXPECT_TRUE(f.cofactor(1, true).is_constant(true));
}

TEST(TruthTable, DependsOn) {
  const TruthTable f = TruthTable::variable(4, 2);
  EXPECT_FALSE(f.depends_on(0));
  EXPECT_FALSE(f.depends_on(1));
  EXPECT_TRUE(f.depends_on(2));
  EXPECT_FALSE(f.depends_on(3));
}

TEST(TruthTable, PermuteSwapsInputs) {
  // f(a, b) = a & !b ; perm swapping inputs yields !a & b.
  TruthTable f(2);
  f.set_bit(0b01, true);  // a=1, b=0
  const TruthTable g = f.permute({1, 0});
  EXPECT_TRUE(g.eval(0b10));
  EXPECT_FALSE(g.eval(0b01));
}

TEST(TruthTable, FromBitsRoundTrip) {
  std::vector<bool> bits{true, false, false, true};
  const TruthTable tt = TruthTable::from_bits(2, bits);
  for (unsigned m = 0; m < 4; ++m) EXPECT_EQ(tt.eval(m), bits[m]);
}

TEST(TruthTable, RejectsTooManyInputs) {
  EXPECT_THROW(TruthTable(9), CheckError);
}

TEST(Netlist, BuildAndQuery) {
  Netlist nl("t");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_lut("g", TruthTable::and_all(2),
                              {nl.cell_output(a), nl.cell_output(b)});
  nl.add_output("y", nl.cell_output(g));
  nl.validate();
  EXPECT_EQ(nl.num_cells(), 4u);
  EXPECT_EQ(nl.num_luts(), 1u);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_TRUE(nl.find_net("g").has_value());
  EXPECT_TRUE(nl.find_cell("g").has_value());
  EXPECT_FALSE(nl.find_net("nope").has_value());
}

TEST(Netlist, NameCollisionsAreDisambiguated) {
  Netlist nl;
  nl.add_input("x");
  const CellId second = nl.add_input("x");
  EXPECT_NE(nl.cell(second).name, "x");
  nl.validate();
}

TEST(Netlist, ReconnectInputMaintainsSinkLists) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g =
      nl.add_lut("g", TruthTable::buffer(), {nl.cell_output(a)});
  nl.add_output("y", nl.cell_output(g));
  nl.reconnect_input(g, 0, nl.cell_output(b));
  nl.validate();
  EXPECT_TRUE(nl.net(nl.cell_output(a)).sinks.empty());
  EXPECT_EQ(nl.net(nl.cell_output(b)).sinks.size(), 1u);
}

TEST(Netlist, TransferSinksMovesAllConsumers) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g1 =
      nl.add_lut("g1", TruthTable::buffer(), {nl.cell_output(a)});
  const CellId g2 =
      nl.add_lut("g2", TruthTable::inverter(), {nl.cell_output(a)});
  nl.add_output("y1", nl.cell_output(g1));
  nl.add_output("y2", nl.cell_output(g2));
  nl.transfer_sinks(nl.cell_output(a), nl.cell_output(b));
  nl.validate();
  EXPECT_TRUE(nl.net(nl.cell_output(a)).sinks.empty());
  EXPECT_EQ(nl.net(nl.cell_output(b)).sinks.size(), 2u);
}

TEST(Netlist, RemoveCellRequiresDeadOutput) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId g =
      nl.add_lut("g", TruthTable::buffer(), {nl.cell_output(a)});
  const CellId h =
      nl.add_lut("h", TruthTable::inverter(), {nl.cell_output(g)});
  EXPECT_THROW(nl.remove_cell(g), CheckError);  // h still consumes it
  nl.remove_cell(h);
  nl.remove_cell(g);
  nl.validate();
  EXPECT_EQ(nl.num_luts(), 0u);
}

TEST(Netlist, RemovedIdsStayStableForSurvivors) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId g =
      nl.add_lut("g", TruthTable::buffer(), {nl.cell_output(a)});
  const CellId h =
      nl.add_lut("h", TruthTable::inverter(), {nl.cell_output(a)});
  nl.remove_cell(g);
  EXPECT_EQ(nl.cell(h).name, "h");  // id h still resolves
  nl.validate();
}

TEST(NetlistOps, TopoOrderRespectsDependencies) {
  const Netlist nl = test::make_adder4();
  const std::vector<CellId> order = topo_order_luts(nl);
  std::vector<int> pos(nl.cell_bound(), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[order[i].value()] = static_cast<int>(i);
  for (CellId id : order) {
    const Cell& c = nl.cell(id);
    for (NetId in : c.inputs) {
      const CellId drv = nl.net(in).driver;
      if (nl.cell(drv).kind == CellKind::kLut)
        EXPECT_LT(pos[drv.value()], pos[id.value()]);
    }
  }
}

TEST(NetlistOps, LevelizeMonotone) {
  const Netlist nl = test::make_adder4();
  const std::vector<int> level = levelize(nl);
  for (CellId id : topo_order_luts(nl)) {
    const Cell& c = nl.cell(id);
    for (NetId in : c.inputs) {
      const CellId drv = nl.net(in).driver;
      if (nl.cell(drv).kind == CellKind::kLut)
        EXPECT_LT(level[drv.value()], level[id.value()]);
    }
  }
  EXPECT_EQ(logic_depth(nl), 4);  // ripple carry chain of 4 full adders
}

TEST(NetlistOps, FaninConeOfCarryChain) {
  const Netlist nl = test::make_adder4();
  const CellId cout_po = nl.primary_outputs().back();
  const auto cone = fanin_cone(nl, nl.cell(cout_po).inputs[0]);
  EXPECT_EQ(cone.size(), 4u);  // the four carry LUTs
}

TEST(NetlistOps, OutputsReachable) {
  const Netlist nl = test::make_adder4();
  EXPECT_TRUE(outputs_reachable(nl));
}

TEST(NetlistOps, StatsSummary) {
  const Netlist nl = test::make_adder4();
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.primary_inputs, 9u);
  EXPECT_EQ(s.primary_outputs, 5u);
  EXPECT_EQ(s.luts, 8u);  // 4x (sum + carry)
  EXPECT_EQ(s.dffs, 0u);
  EXPECT_GT(s.avg_fanout, 0.0);
}

TEST(NetlistOps, CombinationalCycleDetected) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId g1 = nl.add_lut("g1", TruthTable::and_all(2),
                               {nl.cell_output(a), nl.cell_output(a)});
  const CellId g2 =
      nl.add_lut("g2", TruthTable::buffer(), {nl.cell_output(g1)});
  nl.reconnect_input(g1, 1, nl.cell_output(g2));  // close the loop
  nl.add_output("y", nl.cell_output(g2));
  EXPECT_THROW(topo_order_luts(nl), CheckError);
}

}  // namespace
}  // namespace emutile
