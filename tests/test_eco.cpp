// ECO strategy tests: all four strategies implement the same change
// correctly; tiling spends strictly less effort than the baselines on a
// confined change.

#include <gtest/gtest.h>

#include "core/tiling_engine.hpp"
#include "eco/eco_strategies.hpp"
#include "hier/hierarchy.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

struct EcoFixture {
  TiledDesign design;
  DesignHierarchy hier{"fixture"};

  explicit EcoFixture(int luts = 90, std::uint64_t seed = 7) {
    TilingParams tp;
    tp.seed = seed;
    tp.target_overhead = 0.30;
    tp.num_tiles = 6;
    design = TilingEngine::build(test::make_random_netlist(luts, seed), tp);
    const HierId block = hier.add_block("block0");
    hier.bind_remaining(design.netlist, block);
  }

  /// A small deterministic change: invert one LUT and hang a probe off it.
  EcoChange make_change() {
    CellId victim;
    for (CellId id : design.netlist.live_cells())
      if (design.netlist.cell(id).kind == CellKind::kLut) victim = id;
    design.netlist.set_lut_function(
        victim, design.netlist.cell(victim).function.complement());
    EcoChange change;
    change.modified_cells = {victim};
    const CellId probe = design.netlist.add_lut(
        "eco_probe", TruthTable::buffer(),
        {design.netlist.cell_output(victim)});
    change.added_cells = {probe};
    return change;
  }
};

TEST(EcoStrategies, TiledEcoSucceedsAndStaysValid) {
  EcoFixture f;
  const EcoChange change = f.make_change();
  const EcoStrategyResult r = tiled_eco(f.design, change, EcoOptions{});
  EXPECT_TRUE(r.success);
  f.design.validate();
}

TEST(EcoStrategies, QuickEcoSucceedsAndStaysValid) {
  EcoFixture f;
  const EcoChange change = f.make_change();
  const EcoStrategyResult r = quick_eco(f.design, f.hier, change, 3);
  EXPECT_TRUE(r.success);
  f.design.validate();
  // One functional block == whole design: everything re-placed.
  EXPECT_EQ(r.effort.instances_placed,
            f.design.packed.live_insts().size());
}

TEST(EcoStrategies, IncrementalEcoSucceedsAndStaysValid) {
  EcoFixture f;
  const EcoChange change = f.make_change();
  const EcoStrategyResult r =
      incremental_eco(f.design, change, IncrementalOptions{});
  EXPECT_TRUE(r.success);
  f.design.validate();
  EXPECT_GT(r.instances_moved, 0u);
}

TEST(EcoStrategies, FullEcoSucceedsAndStaysValid) {
  EcoFixture f;
  const EcoChange change = f.make_change();
  const EcoStrategyResult r = full_eco(f.design, change, 5);
  EXPECT_TRUE(r.success);
  f.design.validate();
}

TEST(EcoStrategies, AllStrategiesPreserveBehaviour) {
  // The same netlist edit applied through four strategies must yield four
  // physically valid designs with identical behaviour.
  EcoFixture base(80, 19);
  const auto patterns = random_patterns(
      base.design.netlist.primary_inputs().size(), 64, 77);

  TiledDesign d_quick = base.design.clone();
  TiledDesign d_inc = base.design.clone();
  TiledDesign d_full = base.design.clone();

  // Identical edits on each copy (same deterministic script).
  auto edit = [](TiledDesign& d) {
    CellId victim;
    for (CellId id : d.netlist.live_cells())
      if (d.netlist.cell(id).kind == CellKind::kLut) victim = id;
    d.netlist.set_lut_function(
        victim, d.netlist.cell(victim).function.complement());
    EcoChange change;
    change.modified_cells = {victim};
    return change;
  };

  const EcoChange c0 = edit(base.design);
  ASSERT_TRUE(tiled_eco(base.design, c0, EcoOptions{}).success);
  const auto expected = test::run_patterns(base.design.netlist, patterns);

  const EcoChange c1 = edit(d_quick);
  ASSERT_TRUE(quick_eco(d_quick, base.hier, c1, 3).success);
  EXPECT_EQ(test::run_patterns(d_quick.netlist, patterns), expected);
  d_quick.validate();

  const EcoChange c2 = edit(d_inc);
  ASSERT_TRUE(incremental_eco(d_inc, c2, IncrementalOptions{}).success);
  EXPECT_EQ(test::run_patterns(d_inc.netlist, patterns), expected);
  d_inc.validate();

  const EcoChange c3 = edit(d_full);
  ASSERT_TRUE(full_eco(d_full, c3, 9).success);
  EXPECT_EQ(test::run_patterns(d_full.netlist, patterns), expected);
  d_full.validate();
}

TEST(EcoStrategies, TilingPlacesFewerInstancesThanBaselines) {
  EcoFixture base(120, 29);
  TiledDesign d_quick = base.design.clone();
  TiledDesign d_inc = base.design.clone();

  auto edit = [](TiledDesign& d) {
    CellId victim;
    for (CellId id : d.netlist.live_cells())
      if (d.netlist.cell(id).kind == CellKind::kLut) victim = id;
    d.netlist.set_lut_function(
        victim, d.netlist.cell(victim).function.complement());
    EcoChange change;
    change.modified_cells = {victim};
    return change;
  };

  const EcoStrategyResult tiled =
      tiled_eco(base.design, edit(base.design), EcoOptions{});
  const EcoStrategyResult quick =
      quick_eco(d_quick, base.hier, edit(d_quick), 3);
  const EcoStrategyResult inc =
      incremental_eco(d_inc, edit(d_inc), IncrementalOptions{});

  ASSERT_TRUE(tiled.success && quick.success && inc.success);
  // The paper's headline: tiling re-implements a small fraction of the
  // design, the baselines much more.
  EXPECT_LT(tiled.effort.instances_placed, quick.effort.instances_placed);
  EXPECT_LT(tiled.effort.instances_placed * 2,
            quick.effort.instances_placed);
}

}  // namespace
}  // namespace emutile
