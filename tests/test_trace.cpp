// Trace-layer tests: traceparent wire form, TLS span nesting and
// cross-thread handoff, synthesized spans, the wire-text round-trip and its
// rejection of malformed input, Chrome trace-event JSON, the bounded span
// ring, span algebra (shift/dedup), a concurrent recording hammer (the TSan
// preset runs this binary), and the determinism contract: report artifacts
// are byte-identical whether or not tracing recorded anything.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace emutile {
namespace {

// ------------------------------------------------------------ traceparent ---

TEST(Traceparent, RoundTripsThroughTheWireForm) {
  const TraceContext ctx{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string wire = format_traceparent(ctx);
  EXPECT_EQ(wire, "0123456789abcdef-fedcba9876543210");
  const auto parsed = parse_traceparent(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, ctx.trace_id);
  EXPECT_EQ(parsed->span_id, ctx.span_id);
}

TEST(Traceparent, RootContextWithNoSpanSurvivesTheWire) {
  // mint_trace() yields span_id 0 (a root with no span open yet); that must
  // still travel, or a submitter's fresh trace id would be dropped.
  const auto parsed = parse_traceparent(format_traceparent(
      TraceContext{0x00000000000000aaull, 0}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, 0xaaull);
  EXPECT_EQ(parsed->span_id, 0ull);
}

TEST(Traceparent, RejectsGarbage) {
  EXPECT_FALSE(parse_traceparent(""));
  EXPECT_FALSE(parse_traceparent("not-a-traceparent"));
  EXPECT_FALSE(parse_traceparent("0123456789abcdef"));           // no span
  EXPECT_FALSE(parse_traceparent("0123456789abcdef-012345"));    // short span
  EXPECT_FALSE(parse_traceparent("0123456789abcdeg-fedcba9876543210"));
  EXPECT_FALSE(parse_traceparent("0123456789abcdef_fedcba9876543210"));
  EXPECT_FALSE(parse_traceparent(
      "0000000000000000-fedcba9876543210"));  // zero trace id is invalid
  EXPECT_FALSE(parse_traceparent(
      "0123456789abcdef-fedcba9876543210 "));  // trailing junk
  EXPECT_FALSE(parse_traceparent(
      "0123456789ABCDEF-FEDCBA9876543210"));  // upper-case is not canonical
}

// ----------------------------------------------------------- span nesting ---

#ifndef EMUTILE_METRICS_DISABLED

TEST(Tracer, ScopedSpansNestViaTheThreadLocalStack) {
  Tracer tracer;
  TraceContext outer_ctx, inner_ctx;
  {
    const ScopedSpan outer(tracer, "outer");
    outer_ctx = outer.context();
    EXPECT_TRUE(outer_ctx.valid());
    EXPECT_EQ(tracer.current().span_id, outer_ctx.span_id);
    {
      const ScopedSpan inner(tracer, "inner");
      inner_ctx = inner.context();
      EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);
      EXPECT_NE(inner_ctx.span_id, outer_ctx.span_id);
      EXPECT_EQ(tracer.current().span_id, inner_ctx.span_id);
    }
    EXPECT_EQ(tracer.current().span_id, outer_ctx.span_id);
  }
  EXPECT_FALSE(tracer.current().valid());

  const std::vector<TraceSpan> spans = tracer.collect();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start: outer first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_id, outer_ctx.span_id);
  EXPECT_FALSE(spans[0].open);
  EXPECT_FALSE(spans[1].open);
}

TEST(Tracer, PrivateTracersDoNotCrossTalkWithTheGlobalStack) {
  Tracer mine;
  Tracer& global = Tracer::global();
  const ScopedSpan global_span(global, "global.work");
  const ScopedSpan my_span(mine, "my.work");
  // Each tracer's current() sees only its own frames.
  EXPECT_EQ(mine.current().span_id, my_span.context().span_id);
  EXPECT_EQ(global.current().span_id, global_span.context().span_id);
  // And the private span is a root: the global frame is not its parent.
  const std::vector<TraceSpan> open = mine.collect(true);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].parent_id, 0u);
}

TEST(Tracer, ExplicitParentCarriesAcrossAThreadHandoff) {
  Tracer tracer;
  const ScopedSpan parent(tracer, "submit");
  const TraceContext handoff = parent.context();
  std::thread worker([&] {
    // A fresh thread has an empty stack; the explicit context re-parents.
    EXPECT_FALSE(tracer.current().valid());
    const ScopedSpan child(tracer, "session", handoff);
    EXPECT_EQ(child.context().trace_id, handoff.trace_id);
  });
  worker.join();
  const std::vector<TraceSpan> spans = tracer.collect();
  ASSERT_EQ(spans.size(), 2u);  // "session" closed + "submit" still open
  const auto session = std::find_if(
      spans.begin(), spans.end(),
      [](const TraceSpan& s) { return s.name == "session"; });
  ASSERT_NE(session, spans.end());
  EXPECT_EQ(session->parent_id, handoff.span_id);
  EXPECT_EQ(session->trace_id, handoff.trace_id);
  EXPECT_FALSE(session->open);
}

TEST(Tracer, RecordSpanSynthesizesAFullyFormedSpan) {
  Tracer tracer;
  const TraceContext root = tracer.mint_trace();
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.span_id, 0u);
  const TraceContext ctx = tracer.child_context(root);
  EXPECT_EQ(ctx.trace_id, root.trace_id);
  tracer.record_span("queue.wait", ctx, 42, 1000, 250);
  const std::vector<TraceSpan> spans = tracer.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "queue.wait");
  EXPECT_EQ(spans[0].trace_id, root.trace_id);
  EXPECT_EQ(spans[0].span_id, ctx.span_id);
  EXPECT_EQ(spans[0].parent_id, 42u);
  EXPECT_EQ(spans[0].start_us, 1000u);
  EXPECT_EQ(spans[0].dur_us, 250u);
}

TEST(Tracer, CollectTraceFiltersByTraceId) {
  Tracer tracer;
  const TraceContext a = tracer.child_context({});
  const TraceContext b = tracer.child_context({});
  tracer.record_span("a.work", a, 0, 10, 5);
  tracer.record_span("b.work", b, 0, 20, 5);
  const std::vector<TraceSpan> only_a = tracer.collect_trace(a.trace_id);
  ASSERT_EQ(only_a.size(), 1u);
  EXPECT_EQ(only_a[0].name, "a.work");
}

TEST(Tracer, OpenSpansAreVisibleAndFilterable) {
  Tracer tracer;
  const ScopedSpan span(tracer, "in.flight");
  const std::vector<TraceSpan> with_open = tracer.collect(true);
  ASSERT_EQ(with_open.size(), 1u);
  EXPECT_TRUE(with_open[0].open);
  EXPECT_TRUE(tracer.collect(false).empty());
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer;
  // All spans from this thread land in one stripe; overflow it.
  const std::size_t total = 9000;  // > kRingCapacity (8192)
  for (std::size_t i = 0; i < total; ++i) {
    const ScopedSpan span(tracer, "tiny");
    static_cast<void>(span);
  }
  EXPECT_GT(tracer.dropped(), 0u);
  const std::vector<TraceSpan> spans = tracer.collect();
  EXPECT_LT(spans.size(), total);
  EXPECT_EQ(spans.size() + tracer.dropped(), total);
  tracer.reset();
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ConcurrentRecordingKeepsEveryInvariant) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 400;
  const TraceContext root = tracer.child_context({});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, root] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const ScopedSpan outer(tracer, "hammer.outer", root);
        const ScopedSpan inner(tracer, "hammer.inner");
        static_cast<void>(inner);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<TraceSpan> spans = tracer.collect();
  EXPECT_EQ(spans.size() + tracer.dropped(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  std::set<std::uint64_t> ids;
  for (const TraceSpan& s : spans) {
    EXPECT_EQ(s.trace_id, root.trace_id);
    EXPECT_TRUE(ids.insert(s.span_id).second) << "duplicate span id";
    EXPECT_FALSE(s.open);
  }
}

// ---------------------------------------------------------------- wire io ---

std::vector<TraceSpan> sample_spans() {
  std::vector<TraceSpan> spans(2);
  spans[0].name = "endpoint.request.SUBMIT";
  spans[0].trace_id = 0x1111;
  spans[0].span_id = 0x2222;
  spans[0].parent_id = 0;
  spans[0].start_us = 100;
  spans[0].dur_us = 50;
  spans[0].pid = 7;
  spans[0].tid = 1;
  spans[1].name = "campaign.run";
  spans[1].trace_id = 0x1111;
  spans[1].span_id = 0x3333;
  spans[1].parent_id = 0x2222;
  spans[1].start_us = 120;
  spans[1].dur_us = 900;
  spans[1].pid = 7;
  spans[1].tid = 2;
  spans[1].open = true;
  return spans;
}

TEST(TraceIo, WireTextRoundTripsExactly) {
  const std::vector<TraceSpan> spans = sample_spans();
  const std::string text = trace_spans_to_text(spans);
  const std::vector<TraceSpan> back = parse_trace_spans_text(text);
  ASSERT_EQ(back.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(back[i].name, spans[i].name);
    EXPECT_EQ(back[i].trace_id, spans[i].trace_id);
    EXPECT_EQ(back[i].span_id, spans[i].span_id);
    EXPECT_EQ(back[i].parent_id, spans[i].parent_id);
    EXPECT_EQ(back[i].start_us, spans[i].start_us);
    EXPECT_EQ(back[i].dur_us, spans[i].dur_us);
    EXPECT_EQ(back[i].pid, spans[i].pid);
    EXPECT_EQ(back[i].tid, spans[i].tid);
    EXPECT_EQ(back[i].open, spans[i].open);
  }
  // And the text form itself is stable: serialize(parse(t)) == t.
  EXPECT_EQ(trace_spans_to_text(back), text);
}

TEST(TraceIo, ParseRejectsMalformedInput) {
  const std::string good = trace_spans_to_text(sample_spans());
  EXPECT_THROW(parse_trace_spans_text(""), CheckError);
  EXPECT_THROW(parse_trace_spans_text("emutile-trace v2\nend\n"), CheckError);
  // Truncation: missing the end marker.
  EXPECT_THROW(parse_trace_spans_text(good.substr(0, good.size() - 4)),
               CheckError);
  // A corrupted span line.
  std::string corrupt = good;
  corrupt.replace(corrupt.find("trace="), 6, "trXce=");
  EXPECT_THROW(parse_trace_spans_text(corrupt), CheckError);
  // Trailing content after end.
  EXPECT_THROW(parse_trace_spans_text(good + "extra\n"), CheckError);
}

TEST(TraceIo, ChromeJsonCarriesClosedSpansOnly) {
  const std::string json = trace_events_json(sample_spans());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"endpoint.request.SUBMIT\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // The open campaign.run span is skipped — no defensible dur.
  EXPECT_EQ(json.find("\"campaign.run\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceIo, ShiftClampsAtZeroAndDedupKeepsFirst) {
  std::vector<TraceSpan> spans = sample_spans();
  shift_spans(spans, -200);
  EXPECT_EQ(spans[0].start_us, 0u);   // 100 - 200 clamps
  EXPECT_EQ(spans[1].start_us, 0u);   // 120 - 200 clamps
  shift_spans(spans, 40);
  EXPECT_EQ(spans[0].start_us, 40u);

  std::vector<TraceSpan> dup = sample_spans();
  dup.push_back(dup[0]);
  dup.back().name = "impostor";
  const std::vector<TraceSpan> unique = dedup_spans(std::move(dup));
  ASSERT_EQ(unique.size(), 2u);
  EXPECT_EQ(unique[0].name, "endpoint.request.SUBMIT");  // first kept
}

// ------------------------------------------------------------- determinism ---

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.add_design("rand-t", [](std::uint64_t s) {
    return test::make_random_netlist(40, s);
  });
  spec.error_kinds = {ErrorKind::kWrongPolarity};
  spec.sessions_per_scenario = 1;
  spec.master_seed = 4242;
  spec.num_patterns = 64;
  spec.tilings[0].num_tiles = 6;
  spec.tilings[0].target_overhead = 0.30;
  return spec;
}

TEST(TraceDeterminism, ReportBytesAreIdenticalWithAndWithoutActiveTracing) {
  CampaignOptions options;
  options.num_threads = 2;

  // Run inside a foreign active span with the global tracer dirty...
  Tracer::global().reset();
  std::string traced_json, traced_csv;
  {
    const ScopedSpan ambient(Tracer::global(), "test.ambient");
    const CampaignReport report = run_campaign(tiny_spec(), options);
    traced_json = report.to_json();
    traced_csv = report.to_csv();
  }
  EXPECT_TRUE(Tracer::enabled() ? !Tracer::global().collect().empty() : true);

  // ...and with the tracer silent/empty. Bytes must match exactly: traces
  // are sidecars and never feed the deterministic emitters.
  Tracer::global().reset();
  const CampaignReport quiet = run_campaign(tiny_spec(), options);
  EXPECT_EQ(quiet.to_json(), traced_json);
  EXPECT_EQ(quiet.to_csv(), traced_csv);
  Tracer::global().reset();
}

#else  // EMUTILE_METRICS_DISABLED

TEST(TracerDisabled, EverythingIsANoOp) {
  Tracer& tracer = Tracer::global();
  EXPECT_FALSE(Tracer::enabled());
  EXPECT_FALSE(tracer.mint_trace().valid());
  EXPECT_FALSE(tracer.child_context({}).valid());
  {
    const ScopedSpan span(tracer, "never.recorded");
    EXPECT_FALSE(span.context().valid());
    EXPECT_FALSE(tracer.current().valid());
  }
  tracer.record_span("nope", TraceContext{1, 2}, 0, 0, 1);
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

#endif  // EMUTILE_METRICS_DISABLED

}  // namespace
}  // namespace emutile
