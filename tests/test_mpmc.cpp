// MpmcQueue tests: bounded-capacity backpressure, exact delivery (no lost or
// duplicated entries) under producer/consumer hammering, per-producer FIFO
// order, and the blocking pop/push variants' stop semantics. The hammer
// cases also run under the ThreadSanitizer CI lane (tsan preset), which is
// what keeps the count/value CAS protocol honestly race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "util/mpmc_queue.hpp"

namespace emutile {
namespace {

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(MpmcQueue<int>(65).capacity(), 128u);
}

TEST(MpmcQueue, SingleThreadFifoAndBoundedBackpressure) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  // Full ring: pushes fail (backpressure), nothing is overwritten.
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    const std::optional<int> v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_EQ(q.size_approx(), 0u);
  // The ring is reusable across laps.
  EXPECT_TRUE(q.try_push(42));
  EXPECT_EQ(q.try_pop().value_or(-1), 42);
}

TEST(MpmcQueue, MoveOnlyValuesMoveThroughTheCells) {
  MpmcQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(7)));
  std::optional<std::unique_ptr<int>> v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(*v != nullptr);
  EXPECT_EQ(**v, 7);
  // Entries left in the ring are destroyed by the queue's destructor —
  // covered implicitly by ASan/LSan runs of this test.
  EXPECT_TRUE(q.try_push(std::make_unique<int>(8)));
}

/// Entry tagged with its producer and that producer's sequence number, so
/// consumers can verify exact delivery and per-producer order.
struct Tagged {
  std::uint32_t producer = 0;
  std::uint32_t seq = 0;
};

TEST(MpmcQueue, HammerEightByEightLosesNothingDuplicatesNothing) {
  constexpr std::uint32_t kProducers = 8;
  constexpr std::uint32_t kConsumers = 8;
  constexpr std::uint32_t kPerProducer = 20'000;
  MpmcQueue<Tagged> q(256);

  std::atomic<bool> stop{false};
  std::vector<std::vector<Tagged>> consumed(kConsumers);
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, &stop, &consumed, c] {
      consumed[c].reserve((kPerProducer * kProducers) / kConsumers);
      while (std::optional<Tagged> v = q.pop_wait(stop))
        consumed[c].push_back(*v);
    });
  }
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, &stop, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        // push_wait provides the backpressure loop; stop never fires while
        // producers run, so every entry lands.
        ASSERT_TRUE(q.push_wait(Tagged{p, i}, stop));
      }
    });
  }
  for (std::uint32_t p = 0; p < kProducers; ++p)
    threads[kConsumers + p].join();
  // Producers are done; stop the consumers (they drain the ring first).
  stop.store(true);
  q.notify_all();
  for (std::uint32_t c = 0; c < kConsumers; ++c) threads[c].join();

  // Exact delivery: every (producer, seq) pair exactly once.
  std::vector<std::uint32_t> seen(kProducers * kPerProducer, 0);
  std::size_t total = 0;
  for (const std::vector<Tagged>& batch : consumed) {
    for (const Tagged& t : batch) {
      ASSERT_LT(t.producer, kProducers);
      ASSERT_LT(t.seq, kPerProducer);
      ++seen[t.producer * kPerProducer + t.seq];
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kPerProducer);
  for (const std::uint32_t count : seen) ASSERT_EQ(count, 1u);
}

TEST(MpmcQueue, PerProducerOrderSurvivesOneConsumer) {
  // With a single consumer, each producer's entries must arrive in their
  // push order (MPMC interleaves producers but never reorders one).
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 10'000;
  MpmcQueue<Tagged> q(64);
  std::atomic<bool> stop{false};

  std::vector<Tagged> consumed;
  consumed.reserve(kProducers * kPerProducer);
  std::thread consumer([&q, &stop, &consumed] {
    while (std::optional<Tagged> v = q.pop_wait(stop)) consumed.push_back(*v);
  });
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &stop, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push_wait(Tagged{p, i}, stop));
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true);
  q.notify_all();
  consumer.join();

  ASSERT_EQ(consumed.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  std::vector<std::uint32_t> next(kProducers, 0);
  for (const Tagged& t : consumed) {
    ASSERT_EQ(t.seq, next[t.producer])
        << "producer " << t.producer << " reordered";
    ++next[t.producer];
  }
}

TEST(MpmcQueue, StoppingPopStillDrainsTheRing) {
  MpmcQueue<int> q(8);
  std::atomic<bool> stop{false};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  stop.store(true);  // stop set *before* the pops: entries must still drain
  for (int i = 0; i < 5; ++i) {
    const std::optional<int> v = q.pop_wait(stop);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop_wait(stop).has_value());  // drained + stopping => done
}

TEST(MpmcQueue, StoppedPushGivesUpOnFullRing) {
  MpmcQueue<int> q(2);
  std::atomic<bool> stop{false};
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  stop.store(true);
  EXPECT_FALSE(q.push_wait(3, stop));  // full and stopping: refuse, not hang
}

TEST(MpmcQueue, BlockedConsumerWakesOnPush) {
  MpmcQueue<int> q(4);
  std::atomic<bool> stop{false};
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop_wait(stop); });
  // Give the consumer time to reach the blocking wait, then feed it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.try_push(123));
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 123);
}

}  // namespace
}  // namespace emutile
