// Campaign-engine tests: scenario-matrix expansion, split-derived seeding,
// thread-count determinism of the aggregate report, cancellation/progress
// hooks, and the util pieces the subsystem rides on (Rng::split, percentile,
// ThreadPool).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_report.hpp"
#include "campaign/campaign_spec.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

/// Small campaign over synthetic designs — fast enough to run repeatedly
/// under different thread counts.
CampaignSpec small_spec(std::uint64_t master_seed = 77) {
  CampaignSpec spec;
  spec.add_design("rand-a",
                  [](std::uint64_t s) { return test::make_random_netlist(40, s); });
  spec.add_design("rand-b",
                  [](std::uint64_t s) { return test::make_random_netlist(55, s); });
  spec.error_kinds = {ErrorKind::kWrongPolarity, ErrorKind::kWrongConnection};
  spec.sessions_per_scenario = 2;
  spec.master_seed = master_seed;
  spec.num_patterns = 128;
  spec.tilings[0].num_tiles = 6;
  spec.tilings[0].target_overhead = 0.30;
  return spec;
}

TEST(RngSplit, IndependentOfDrawCountAndDistinctPerStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) static_cast<void>(b());  // advance b only

  // split depends on the seed, not the generator position.
  for (std::uint64_t stream : {0ull, 1ull, 2ull, 1ull << 20}) {
    Rng ca = a.split(stream);
    Rng cb = b.split(stream);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(ca(), cb()) << "stream " << stream;
  }

  // Adjacent streams and adjacent masters decorrelate.
  std::set<std::uint64_t> by_stream, by_master;
  for (std::uint64_t s = 0; s < 1000; ++s) by_stream.insert(split_seed(9, s));
  for (std::uint64_t m = 0; m < 1000; ++m) by_master.insert(split_seed(m, 9));
  EXPECT_EQ(by_stream.size(), 1000u);
  EXPECT_EQ(by_master.size(), 1000u);
}

TEST(Percentile, MatchesMedianAndInterpolates) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), median(xs));
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
  EXPECT_THROW(static_cast<void>(percentile({}, 50.0)), CheckError);
  EXPECT_THROW(static_cast<void>(percentile({1.0}, 101.0)), CheckError);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  // The pool is reusable after wait_idle.
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32);
}

TEST(CampaignSpec, ExpansionOrderAndSeedsAreCanonical) {
  const CampaignSpec spec = small_spec();
  EXPECT_EQ(spec.num_scenarios(), 4u);   // 2 designs x 2 kinds x 1 tiling
  EXPECT_EQ(spec.num_sessions(), 8u);
  const std::vector<CampaignJob> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 8u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].scenario, i / 2);
    EXPECT_EQ(jobs[i].replica, i % 2);
    // Seeds are split-derived from (scenario, replica) — each scenario owns
    // its own replica stream — never from the job's list position.
    EXPECT_EQ(jobs[i].options.seed,
              spec.session_seed(jobs[i].scenario, jobs[i].replica));
    // The physical build is seeded per (design, tiling) pair — every session
    // of a pair implements on the same design, the precondition for sharing
    // a warm-start baseline — never per session.
    const std::size_t tiling_index = jobs[i].scenario % spec.tilings.size();
    EXPECT_EQ(jobs[i].options.tiling.seed,
              spec.build_seed(jobs[i].design_index * spec.tilings.size() +
                              tiling_index));
    seeds.insert(jobs[i].options.seed);
  }
  EXPECT_EQ(seeds.size(), jobs.size()) << "session seeds must be distinct";
}

TEST(CampaignSpec, PerScenarioBudgetsContinueTheReplicaStreams) {
  const CampaignSpec uniform = small_spec();
  const std::vector<CampaignJob> uniform_jobs = uniform.expand();

  // A follow-up-round style spec: scenario budgets differ and replica_base
  // picks up where a 2-replica uniform round stopped.
  CampaignSpec round = uniform;
  round.sessions_per_scenario = 0;  // ignored once the vector is set
  round.sessions_by_scenario = {3, 0, 1, 2};
  round.replica_base = {2, 2, 2, 2};
  EXPECT_EQ(round.num_sessions(), 6u);
  const std::vector<CampaignJob> jobs = round.expand();
  ASSERT_EQ(jobs.size(), 6u);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(jobs[i].index, i) << "round jobs keep a dense canonical order";
  EXPECT_EQ(jobs[0].scenario, 0u);
  EXPECT_EQ(jobs[0].replica, 2u);
  EXPECT_EQ(jobs[3].scenario, 2u);
  EXPECT_EQ(jobs[3].replica, 2u);
  EXPECT_EQ(jobs[4].scenario, 3u);

  // Superset property: a replica shared with the uniform run (same scenario,
  // same absolute replica index) carries the identical seed, so its session
  // is byte-identical.
  for (const CampaignJob& job : jobs) {
    EXPECT_EQ(job.options.seed,
              uniform.session_seed(job.scenario, job.replica));
    for (const CampaignJob& u : uniform_jobs) {
      if (u.scenario == job.scenario && u.replica == job.replica) {
        EXPECT_EQ(u.options.seed, job.options.seed);
      }
    }
  }

  // Malformed budget vectors are rejected, not silently mis-expanded.
  CampaignSpec bad = uniform;
  bad.sessions_by_scenario = {1, 2};  // 4 scenarios
  EXPECT_THROW(static_cast<void>(bad.expand()), CheckError);
  bad = uniform;
  bad.replica_base = {0, 0, 0, -1};
  EXPECT_THROW(static_cast<void>(bad.num_sessions()), CheckError);
}

TEST(CampaignEngine, EmptySpecProducesEmptyReport) {
  CampaignSpec spec;  // no designs
  const CampaignReport report = run_campaign(spec);
  EXPECT_EQ(report.sessions, 0u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_TRUE(report.scenarios.empty());
  EXPECT_EQ(report.detection_rate(), 0.0);
  // Emitters must not choke on the empty report.
  EXPECT_FALSE(report.to_csv().empty());
  EXPECT_FALSE(report.to_json().empty());
}

TEST(CampaignEngine, SingleJobMatchesDirectSession) {
  CampaignSpec spec;
  spec.add_design("solo",
                  [](std::uint64_t s) { return test::make_random_netlist(70, s); });
  spec.error_kinds = {ErrorKind::kWrongPolarity};
  spec.sessions_per_scenario = 1;
  spec.master_seed = 5;
  spec.num_patterns = 128;
  spec.tilings[0].num_tiles = 6;
  spec.tilings[0].target_overhead = 0.30;

  const CampaignReport report = run_campaign(spec);
  ASSERT_EQ(report.sessions, 1u);

  // The one campaign session is exactly run_debug_session with the
  // split-derived seed on the same golden netlist — including the case
  // where the flow throws (the engine records it as a failed session).
  const std::vector<CampaignJob> jobs = spec.expand();
  const Netlist golden = test::make_random_netlist(70, spec.design_seed(0));
  DebugSessionReport direct;
  std::string direct_error;
  try {
    direct = run_debug_session(golden, jobs[0].options);
  } catch (const std::exception& e) {
    direct_error = e.what();
  }
  if (direct_error.empty()) {
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.detected, direct.detection.error_detected ? 1u : 0u);
    if (report.debug_work.count()) {
      EXPECT_DOUBLE_EQ(report.debug_work.mean(),
                       work_units(direct.debug_effort));
    }
  } else {
    EXPECT_EQ(report.failed, 1u);
  }
}

TEST(CampaignEngine, ReportIsByteIdenticalAcross1And2And8Threads) {
  const CampaignSpec spec = small_spec();
  std::string csv_ref, json_ref;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    CampaignOptions options;
    options.num_threads = threads;
    const CampaignReport report = run_campaign(spec, options);
    EXPECT_EQ(report.sessions, spec.num_sessions());
    EXPECT_EQ(report.num_threads, threads);
    if (csv_ref.empty()) {
      csv_ref = report.to_csv();
      json_ref = report.to_json();
      EXPECT_GT(report.completed, 0u);
    } else {
      EXPECT_EQ(report.to_csv(), csv_ref) << threads << " threads";
      EXPECT_EQ(report.to_json(), json_ref) << threads << " threads";
    }
  }
}

TEST(CampaignEngine, ProgressReportedAndCancelStopsEarly) {
  const CampaignSpec spec = small_spec(31);
  std::atomic<std::size_t> progress_calls{0};
  std::atomic<bool> cancel{false};

  CampaignOptions options;
  options.num_threads = 2;
  options.campaign_id = "cancel-test";
  options.on_progress = [&](const std::string& id, std::size_t done,
                            std::size_t total) {
    EXPECT_EQ(id, "cancel-test") << "progress must carry the campaign id";
    EXPECT_LE(done, total);
    if (++progress_calls >= 2) cancel.store(true);  // cancel mid-campaign
  };
  options.cancel = [&] { return cancel.load(); };

  const CampaignReport report = run_campaign(spec, options);
  EXPECT_EQ(progress_calls.load(), spec.num_sessions())
      << "every session reports progress, even when cancelled";
  EXPECT_EQ(report.sessions, spec.num_sessions());
  EXPECT_GT(report.cancelled, 0u) << "cancellation must be visible";
  EXPECT_EQ(report.completed + report.cancelled + report.failed,
            report.sessions);
}

TEST(CampaignEngine, SmokeCampaignOverCatalogDesigns) {
  // Three real Table 1 designs, one quick session each.
  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.add_catalog_design("styr");
  spec.add_catalog_design("sand");
  spec.error_kinds = {ErrorKind::kWrongPolarity};
  spec.sessions_per_scenario = 1;
  spec.master_seed = 4;
  spec.num_patterns = 96;
  spec.tilings[0].num_tiles = 8;

  CampaignOptions options;
  options.num_threads = 2;
  const CampaignReport report = run_campaign(spec, options);
  EXPECT_EQ(report.sessions, 3u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.completed, 3u);
  ASSERT_EQ(report.scenarios.size(), 3u);
  EXPECT_EQ(report.scenarios[0].design, "9sym");
  EXPECT_EQ(report.scenarios[2].design, "sand");
  for (const ScenarioStats& s : report.scenarios)
    EXPECT_GT(s.build_work.mean(), 0.0) << s.design;
}

TEST(CampaignEngine, UnknownCatalogDesignThrowsEagerly) {
  CampaignSpec spec;
  EXPECT_THROW(spec.add_catalog_design("no-such-design"), CheckError);
  // Names flow into CSV/JSON verbatim, so quoting-hostile ones are rejected.
  const auto builder = [](std::uint64_t s) {
    return test::make_random_netlist(10, s);
  };
  EXPECT_THROW(spec.add_design("a,b", builder), CheckError);
  EXPECT_THROW(spec.add_design("a\"b", builder), CheckError);
  EXPECT_THROW(spec.add_design("", builder), CheckError);
}

TEST(CampaignEngine, ZeroReplicasStillLabelsScenarioRows) {
  CampaignSpec spec;
  spec.add_design("zero-rep",
                  [](std::uint64_t s) { return test::make_random_netlist(10, s); });
  spec.error_kinds = {ErrorKind::kWrongPolarity};
  spec.sessions_per_scenario = 0;
  const CampaignReport report = run_campaign(spec);
  EXPECT_EQ(report.sessions, 0u);
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_EQ(report.scenarios[0].design, "zero-rep");
  EXPECT_EQ(report.scenarios[0].error_kind, ErrorKind::kWrongPolarity);
}

TEST(CampaignShard, SlicesAreDisjointAndCoverAllJobs) {
  const CampaignSpec spec = small_spec(91);
  const std::vector<CampaignJob> all = spec.expand();
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < 3; ++i) {
    const CampaignSpec piece = spec.shard(i, 3);
    for (const CampaignJob& job : piece.expand()) {
      EXPECT_TRUE(seen.insert(job.index).second)
          << "job " << job.index << " appears in two shards";
      // Shard jobs carry their unsharded identity: same seed, scenario,
      // and options as the corresponding job of the full expansion.
      ASSERT_LT(job.index, all.size());
      EXPECT_EQ(job.options.seed, all[job.index].options.seed);
      EXPECT_EQ(job.scenario, all[job.index].scenario);
      EXPECT_EQ(job.replica, all[job.index].replica);
    }
  }
  EXPECT_EQ(seen.size(), all.size()) << "shards must cover every job";

  EXPECT_THROW(static_cast<void>(spec.shard(3, 3)), CheckError);
  EXPECT_THROW(static_cast<void>(spec.shard(0, 0)), CheckError);
  EXPECT_THROW(static_cast<void>(spec.shard(0, 2).shard(0, 2)), CheckError);
}

TEST(CampaignSlice, NarrowsTheJobRangeWithoutChangingJobIdentity) {
  // slice(b, e) is what work stealing runs on: the global job range
  // [b, e) of the canonical expansion, each job keeping its unsharded
  // index, scenario, replica, and seed.
  const CampaignSpec spec = small_spec(91);
  const std::vector<CampaignJob> all = spec.expand();
  ASSERT_GE(all.size(), 4u);

  const std::size_t mid = all.size() / 2;
  const CampaignSpec left = spec.slice(0, mid);
  const CampaignSpec right = spec.slice(mid, all.size());
  EXPECT_TRUE(left.sliced());
  std::size_t next = 0;
  for (const CampaignSpec* half : {&left, &right})
    for (const CampaignJob& job : half->expand()) {
      EXPECT_EQ(job.index, next++) << "halves must tile the job list";
      EXPECT_EQ(job.options.seed, all[job.index].options.seed);
      EXPECT_EQ(job.scenario, all[job.index].scenario);
      EXPECT_EQ(job.replica, all[job.index].replica);
    }
  EXPECT_EQ(next, all.size());

  // Slices compose with shards (how a stolen shard's range is expressed)
  // and re-slicing may only narrow.
  const CampaignSpec shard = spec.shard(0, 2);
  const std::size_t shard_jobs = shard.expand().size();
  ASSERT_GE(shard_jobs, 2u);
  EXPECT_EQ(shard.slice(1, shard_jobs).expand().size(), shard_jobs - 1);
  EXPECT_EQ(left.slice(1, mid).expand().size(), mid - 1);
  EXPECT_THROW(static_cast<void>(spec.slice(2, 2)), CheckError);
  EXPECT_THROW(static_cast<void>(left.slice(0, all.size())), CheckError);

  // The merged halves reproduce the unsliced run byte for byte — the
  // determinism contract stealing depends on.
  CampaignReport merged = run_campaign(left);
  merged.merge(run_campaign(right));
  const CampaignReport full = run_campaign(spec);
  EXPECT_EQ(merged.to_csv(), full.to_csv());
  EXPECT_EQ(merged.to_json(), full.to_json());
}

TEST(CampaignSlice, RoundTripsThroughTheWireFormatOnlyWhenSet) {
  // A catalog-design spec — only those travel the wire format.
  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.error_kinds = {ErrorKind::kWrongPolarity, ErrorKind::kWrongConnection};
  spec.sessions_per_scenario = 2;
  spec.master_seed = 7;
  spec.num_patterns = 96;
  // Unsliced specs must serialize without a `slice` key at all: adding the
  // field may not perturb existing content hashes or cached results.
  const std::string plain = serialize_campaign_spec(spec);
  EXPECT_EQ(plain.find("slice"), std::string::npos);

  const CampaignSpec sliced = spec.slice(1, 3);
  const std::string wire = serialize_campaign_spec(sliced);
  EXPECT_NE(wire.find("slice 1 3"), std::string::npos) << wire;
  const CampaignSpec parsed = parse_campaign_spec(wire);
  EXPECT_EQ(parsed.slice_begin, 1u);
  EXPECT_EQ(parsed.slice_end, 3u);
  EXPECT_EQ(serialize_campaign_spec(parsed), wire);

  // The slice is semantic: it must move the content hash (two different
  // job ranges may never collide in the result cache).
  EXPECT_NE(spec_content_hash(spec), spec_content_hash(sliced));
  EXPECT_NE(spec_content_hash(sliced), spec_content_hash(spec.slice(1, 4)));
}

TEST(CampaignShard, MergedShardReportsMatchUnshardedRun) {
  // Baselines on: shards partition the (design, tiling) baseline pairs
  // round-robin, so the merged report must recover every measurement.
  CampaignSpec spec = small_spec(91);
  spec.measure_baselines = true;
  const CampaignReport full = run_campaign(spec);

  CampaignReport merged;
  bool first = true;
  for (std::size_t i = 0; i < 3; ++i) {
    CampaignOptions options;
    options.num_threads = 2;
    const CampaignReport piece = run_campaign(spec.shard(i, 3), options);
    if (first) {
      merged = piece;
      first = false;
    } else {
      merged.merge(piece);
    }
  }
  EXPECT_EQ(merged.sessions, full.sessions);
  EXPECT_EQ(merged.completed, full.completed);
  EXPECT_EQ(merged.to_csv(), full.to_csv());
  EXPECT_EQ(merged.to_json(), full.to_json());
}

TEST(CampaignShard, MergeOfEmptyAndSingleShardListsIsWellDefined) {
  // Empty shard list: the identity (default-constructed) report.
  const CampaignReport none = merge_reports({});
  EXPECT_EQ(none.sessions, 0u);
  EXPECT_TRUE(none.scenarios.empty());
  EXPECT_FALSE(none.to_csv().empty());  // emitters handle it

  // Single shard: byte-for-byte the shard itself.
  const CampaignSpec spec = small_spec(19);
  const CampaignReport solo = run_campaign(spec);
  const CampaignReport merged_solo = merge_reports({solo});
  EXPECT_EQ(merged_solo.to_csv(), solo.to_csv());
  EXPECT_EQ(merged_solo.to_json(), solo.to_json());
  EXPECT_EQ(merged_solo.sessions, solo.sessions);
  EXPECT_EQ(merged_solo.wall_seconds, solo.wall_seconds);

  // The empty report is the merge identity on either side, and only the
  // execution stats (wall clock, cache counters) carry across.
  CampaignReport empty_first;
  empty_first.wall_seconds = 1.5;
  empty_first.cache_hits = 3;
  empty_first.merge(solo);
  EXPECT_EQ(empty_first.to_csv(), solo.to_csv());
  EXPECT_DOUBLE_EQ(empty_first.wall_seconds, solo.wall_seconds + 1.5);
  EXPECT_EQ(empty_first.cache_hits, solo.cache_hits + 3);
  CampaignReport empty_second = solo;
  empty_second.merge(CampaignReport{});
  EXPECT_EQ(empty_second.to_csv(), solo.to_csv());
  EXPECT_EQ(empty_second.sessions, solo.sessions);

  // A list that folds through the identity still equals the shard-by-shard
  // merge of the full campaign.
  const CampaignReport a = run_campaign(spec.shard(0, 2));
  const CampaignReport b = run_campaign(spec.shard(1, 2));
  const CampaignReport folded = merge_reports({a, b});
  EXPECT_EQ(folded.to_csv(), solo.to_csv());
  EXPECT_EQ(folded.to_json(), solo.to_json());
}

TEST(CampaignBaselines, MeasureCoversFullFigure5StrategySet) {
  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.error_kinds = {ErrorKind::kWrongPolarity};
  spec.sessions_per_scenario = 0;  // baselines only — no sessions needed
  spec.master_seed = 12;
  spec.measure_baselines = true;
  spec.tilings[0].num_tiles = 6;

  const CampaignReport report = run_campaign(spec);
  ASSERT_EQ(report.scenarios.size(), 1u);
  const ScenarioBaseline& b = report.scenarios[0].baseline;
  ASSERT_TRUE(b.measured);
  EXPECT_GT(b.speedup_quick, 0.0);
  EXPECT_GT(b.speedup_incremental, 0.0);
  EXPECT_GT(b.speedup_full, 0.0);
  EXPECT_GT(report.speedup_incremental_geomean, 0.0);
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("speedup_incr"), std::string::npos);
  EXPECT_NE(report.to_json().find("speedup_incremental_geomean"),
            std::string::npos);
}

TEST(CampaignEngine, WarmStartReportIsByteIdenticalToColdBuild) {
  // The warm-start contract: sharing one pre-injection tiled baseline per
  // (design, tiling) pair changes *when* the physical design is computed,
  // never *what* any session observes — the CSV and JSON reports must be
  // byte-identical to a campaign forced through cold builds, across every
  // error kind (wrong-connection sessions fall back to cold builds inside
  // the warm run).
  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.sessions_per_scenario = 2;
  spec.master_seed = 77;
  spec.num_patterns = 96;
  spec.tilings[0].num_tiles = 4;
  spec.tilings[0].target_overhead = 0.30;

  CampaignOptions cold_opts;
  cold_opts.num_threads = 2;
  cold_opts.warm_start = false;
  const CampaignReport cold = run_campaign(spec, cold_opts);

  CampaignOptions warm_opts;
  warm_opts.num_threads = 2;  // warm_start defaults on
  const CampaignReport warm = run_campaign(spec, warm_opts);

  EXPECT_EQ(warm.to_csv(), cold.to_csv());
  EXPECT_EQ(warm.to_json(), cold.to_json());
  EXPECT_EQ(cold.warm_builds, 0u);
  EXPECT_GT(warm.warm_builds, 0u);
  // Only the LUT-reconfiguration kinds may warm-start: with three error
  // kinds and 2 sessions each, at most 4 of 6 completed sessions clone.
  EXPECT_LE(warm.warm_builds + warm.failed + warm.cancelled,
            2u * (spec.error_kinds.size() - 1) + warm.failed + warm.cancelled);

  // The timing emitters carry the wall-clock profile the deterministic
  // report excludes: every executed session is timed, and the CSV header
  // names each phase.
  EXPECT_EQ(warm.session_wall.count(), warm.completed);
  const std::string timing = warm.timing_csv();
  EXPECT_NE(timing.find("build_mean_s"), std::string::npos);
  EXPECT_NE(timing.find("localize_mean_s"), std::string::npos);
  EXPECT_NE(warm.timing_json().find("\"warm_builds\""), std::string::npos);
}

TEST(SessionHooks, PhaseSequenceAndCancellation) {
  // Same proven-converging configuration as DebugLoop.FullSession.
  const Netlist golden = test::make_random_netlist(70, 53);
  DebugSessionOptions options;
  options.error_kind = ErrorKind::kWrongPolarity;
  options.seed = 9;
  options.num_patterns = 192;
  options.tiling.num_tiles = 6;
  options.tiling.target_overhead = 0.30;

  std::vector<SessionPhase> phases;
  options.hooks.on_phase = [&](SessionPhase phase) {
    phases.push_back(phase);
    return true;
  };
  const DebugSessionReport full = run_debug_session(golden, options);
  EXPECT_FALSE(full.cancelled);
  ASSERT_GE(phases.size(), 3u);
  EXPECT_EQ(phases[0], SessionPhase::kInject);
  EXPECT_EQ(phases[1], SessionPhase::kBuild);
  EXPECT_EQ(phases[2], SessionPhase::kDetect);
  for (std::size_t i = 1; i < phases.size(); ++i)
    EXPECT_LT(static_cast<int>(phases[i - 1]), static_cast<int>(phases[i]));

  // Cancelling at kLocalize skips localization and correction entirely.
  options.hooks.on_phase = [](SessionPhase phase) {
    return phase != SessionPhase::kLocalize;
  };
  const DebugSessionReport cut = run_debug_session(golden, options);
  EXPECT_TRUE(cut.cancelled);
  EXPECT_TRUE(cut.localization.iterations.empty());
  EXPECT_FALSE(cut.correction.corrected);
  EXPECT_EQ(std::string(to_string(SessionPhase::kLocalize)), "localize");
}

}  // namespace
}  // namespace emutile
