// Router tests: full routing legality, determinized structure, partial
// rip-up with orphan reattachment, and pruning.

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/flow.hpp"
#include "core/region_mask.hpp"
#include "core/tile_grid.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

/// Small fully built design (packed, placed, routed).
TiledDesign build_small(int luts = 50, std::uint64_t seed = 3,
                        int tracks = 8) {
  FlowParams fp;
  fp.seed = seed;
  fp.slack = 0.25;
  fp.tracks_per_channel = tracks;
  return build_flat(test::make_random_netlist(luts, seed), fp);
}

TEST(Router, FullRouteIsLegal) {
  TiledDesign d = build_small();
  EXPECT_EQ(d.routing->count_overused(), 0u);
  for (const PhysNet& n : d.nets) {
    ASSERT_TRUE(d.routing->has_tree(n.net));
    d.routing->validate_tree(n.net);
  }
}

TEST(Router, TreesStartAtSourceAndReachAllSinks) {
  TiledDesign d = build_small();
  for (const PhysNet& n : d.nets) {
    const RouteTree& t = d.routing->tree(n.net);
    const RrNodeId source =
        d.rr->opin(d.placement->site_of(n.src_inst), n.src_opin);
    EXPECT_EQ(t.nodes[0], source);
    std::unordered_set<std::uint32_t> nodes;
    for (RrNodeId x : t.nodes) nodes.insert(x.value());
    for (InstId s : n.sink_insts)
      EXPECT_TRUE(
          nodes.count(d.rr->sink(d.placement->site_of(s)).value()))
          << "sink not reached";
  }
}

TEST(Router, OccupancyMatchesTrees) {
  TiledDesign d = build_small();
  std::vector<int> occ(d.rr->num_nodes(), 0);
  for (const PhysNet& n : d.nets)
    for (RrNodeId x : d.routing->tree(n.net).nodes) ++occ[x.value()];
  for (std::size_t i = 0; i < occ.size(); ++i)
    EXPECT_EQ(occ[i],
              d.routing->occupancy(RrNodeId{static_cast<std::uint32_t>(i)}));
}

TEST(Router, PathToWalksRootToSink) {
  TiledDesign d = build_small();
  const PhysNet& n = d.nets.front();
  const RrNodeId sink = d.rr->sink(d.placement->site_of(n.sink_insts[0]));
  const auto path = d.routing->path_to(n.net, sink);
  EXPECT_EQ(path.front(),
            d.rr->opin(d.placement->site_of(n.src_inst), n.src_opin));
  EXPECT_EQ(path.back(), sink);
}

TEST(Router, PruneToSinksDropsBranch) {
  TiledDesign d = build_small(60, 9);
  // Find a net with at least two sinks.
  const PhysNet* multi = nullptr;
  for (const PhysNet& n : d.nets)
    if (n.sink_insts.size() >= 2) {
      multi = &n;
      break;
    }
  ASSERT_NE(multi, nullptr);
  const std::size_t before = d.routing->tree(multi->net).size();
  // Keep only the first sink.
  std::vector<RrNodeId> wanted{
      d.rr->sink(d.placement->site_of(multi->sink_insts[0]))};
  d.routing->prune_to_sinks(multi->net, wanted);
  const RouteTree& t = d.routing->tree(multi->net);
  EXPECT_LT(t.size(), before);
  d.routing->validate_tree(multi->net);
  // Second sink's SINK node no longer used by this net.
  const RrNodeId dropped =
      d.rr->sink(d.placement->site_of(multi->sink_insts[1]));
  for (RrNodeId x : t.nodes) EXPECT_NE(x, dropped);
}

TEST(Router, PartialRipUpSplitsIntoGroups) {
  TiledDesign d = build_small(60, 4);
  // Rip the middle third of the device for every net crossing it.
  const int w = d.device->width();
  std::vector<std::uint8_t> rip(d.rr->num_nodes(), 0);
  for (std::size_t i = 0; i < d.rr->num_nodes(); ++i) {
    const RrNodeInfo& info = d.rr->node(RrNodeId{static_cast<std::uint32_t>(i)});
    if (info.x >= w / 3 && info.x < 2 * w / 3) rip[i] = 1;
  }
  int crossing = 0;
  for (const PhysNet& n : d.nets) {
    bool touches = false;
    for (RrNodeId x : d.routing->tree(n.net).nodes)
      if (rip[x.value()]) touches = true;
    if (!touches) continue;
    ++crossing;
    const RrNodeId src =
        d.rr->opin(d.placement->site_of(n.src_inst), n.src_opin);
    const RouteForest f = d.routing->rip_up_partial(n.net, rip, src);
    // Every kept node avoids the rip region; group labels are consistent.
    for (std::size_t k = 0; k < f.nodes.size(); ++k) {
      EXPECT_FALSE(rip[f.nodes[k].value()]);
      if (f.parent[k] >= 0)
        EXPECT_EQ(f.group[k], f.group[static_cast<std::size_t>(f.parent[k])]);
      else
        EXPECT_TRUE(f.group[k] == 0 ||
                    (f.group[k] > 0 && f.group[k] <= f.num_orphan_groups));
    }
    // Group 0, if present, is rooted at the source.
    for (std::size_t k = 0; k < f.nodes.size(); ++k)
      if (f.parent[k] < 0 && f.group[k] == 0) EXPECT_EQ(f.nodes[k], src);
  }
  EXPECT_GT(crossing, 0) << "test design too small to cross the strip";
}

TEST(Router, ReroutesAfterPartialRipWithKeptForest) {
  // Clear the middle column of a 3x1 tile grid using the engine's own mask
  // semantics (interior ripped, boundary channels usable but not ripped) and
  // re-route everything that crossed it against the kept stubs.
  TiledDesign d = build_small(60, 5, 12);
  const TileGrid grid(d.device->width(), d.device->height(), 3, 1);
  std::vector<std::uint8_t> tile_affected(3, 0);
  tile_affected[1] = 1;
  const RegionMasks masks = build_region_masks(*d.rr, grid, tile_affected);

  std::vector<NetTask> tasks;
  for (const PhysNet& n : d.nets) {
    bool touches = false;
    for (RrNodeId x : d.routing->tree(n.net).nodes)
      if (masks.rip[x.value()]) touches = true;
    if (!touches) continue;
    NetTask t;
    t.net = n.net;
    t.source = d.rr->opin(d.placement->site_of(n.src_inst), n.src_opin);
    for (InstId s : n.sink_insts)
      t.sinks.push_back(d.rr->sink(d.placement->site_of(s)));
    t.kept = d.routing->rip_up_partial(n.net, masks.rip, t.source);
    tasks.push_back(std::move(t));
  }
  ASSERT_FALSE(tasks.empty());

  Router router(*d.rr);
  RouterParams rp;
  rp.allowed_mask = &masks.allowed;
  const RouteResult res =
      router.route(std::move(tasks), *d.routing, rp);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(d.routing->count_overused(), 0u);
  for (const PhysNet& n : d.nets) {
    ASSERT_TRUE(d.routing->has_tree(n.net));
    d.routing->validate_tree(n.net);
    // All sinks still reached.
    std::unordered_set<std::uint32_t> nodes;
    for (RrNodeId x : d.routing->tree(n.net).nodes) nodes.insert(x.value());
    for (InstId s : n.sink_insts)
      EXPECT_TRUE(nodes.count(d.rr->sink(d.placement->site_of(s)).value()));
  }
}

TEST(Router, FailureRestoresKeptStateCleanly) {
  // Starve the router (2 tracks) so the strip re-route must fail; the
  // routing database must come back consistent, with every task restored to
  // exactly its kept forest (locked boundary stubs intact) so the caller
  // can retry with a larger region.
  TiledDesign d = build_small(50, 3, 2);
  // A 2-track build may fail outright and widen; rebuild masks on whatever
  // device emerged, then starve a custom region.
  const int w = d.device->width();
  std::vector<std::uint8_t> rip(d.rr->num_nodes(), 0);
  std::vector<std::uint8_t> allowed(d.rr->num_nodes(), 0);
  for (std::size_t i = 0; i < d.rr->num_nodes(); ++i) {
    const RrNodeInfo& info = d.rr->node(RrNodeId{static_cast<std::uint32_t>(i)});
    // Allow only a 1-column sliver: almost everything is unroutable.
    const bool inside = info.x == w / 2;
    rip[i] = inside ? 1 : 0;
    allowed[i] = inside ? 1 : 0;
  }
  std::vector<NetTask> tasks;
  std::vector<std::pair<NetId, std::size_t>> kept_sizes;
  for (const PhysNet& n : d.nets) {
    bool touches = false;
    for (RrNodeId x : d.routing->tree(n.net).nodes)
      if (rip[x.value()]) touches = true;
    if (!touches) continue;
    NetTask t;
    t.net = n.net;
    t.source = d.rr->opin(d.placement->site_of(n.src_inst), n.src_opin);
    for (InstId s : n.sink_insts)
      t.sinks.push_back(d.rr->sink(d.placement->site_of(s)));
    t.kept = d.routing->rip_up_partial(n.net, rip, t.source);
    kept_sizes.emplace_back(t.net, t.kept.nodes.size());
    tasks.push_back(std::move(t));
  }
  if (tasks.empty()) GTEST_SKIP() << "no crossing nets at this seed";

  Router router(*d.rr);
  RouterParams rp;
  rp.allowed_mask = &allowed;
  const RouteResult res = router.route(std::move(tasks), *d.routing, rp);
  if (res.success) GTEST_SKIP() << "sliver unexpectedly routable";

  // Occupancy must be internally consistent and each task's tree must be
  // exactly its kept forest again.
  EXPECT_EQ(d.routing->audit_occupancy(), 0u);
  for (const auto& [net, kept_size] : kept_sizes) {
    if (kept_size == 0) {
      EXPECT_FALSE(d.routing->has_tree(net));
    } else {
      ASSERT_TRUE(d.routing->has_tree(net));
      EXPECT_EQ(d.routing->tree(net).size(), kept_size);
    }
  }
}

TEST(Router, ConfinedRouteNeverStraysOutsideMask) {
  TiledDesign d = build_small(60, 6, 12);
  const TileGrid grid(d.device->width(), d.device->height(), 2, 1);
  std::vector<std::uint8_t> tile_affected(2, 0);
  tile_affected[1] = 1;  // right half
  const RegionMasks masks = build_region_masks(*d.rr, grid, tile_affected);

  std::vector<NetTask> tasks;
  std::unordered_set<std::uint32_t> kept_nodes;
  for (const PhysNet& n : d.nets) {
    bool touches = false;
    for (RrNodeId x : d.routing->tree(n.net).nodes)
      if (masks.rip[x.value()]) touches = true;
    if (!touches) continue;
    NetTask t;
    t.net = n.net;
    t.source = d.rr->opin(d.placement->site_of(n.src_inst), n.src_opin);
    for (InstId s : n.sink_insts)
      t.sinks.push_back(d.rr->sink(d.placement->site_of(s)));
    t.kept = d.routing->rip_up_partial(n.net, masks.rip, t.source);
    for (RrNodeId x : t.kept.nodes) kept_nodes.insert(x.value());
    tasks.push_back(std::move(t));
  }
  std::vector<NetId> task_nets;
  for (const NetTask& t : tasks) task_nets.push_back(t.net);

  Router router(*d.rr);
  RouterParams rp;
  rp.allowed_mask = &masks.allowed;
  const RouteResult res = router.route(std::move(tasks), *d.routing, rp);
  ASSERT_TRUE(res.success);
  // Every new node of a rerouted tree is either kept or inside the mask.
  for (NetId net : task_nets)
    for (RrNodeId x : d.routing->tree(net).nodes)
      EXPECT_TRUE(kept_nodes.count(x.value()) || masks.allowed[x.value()]);
}

}  // namespace
}  // namespace emutile
