// Device geometry and RR-graph structural tests.

#include <gtest/gtest.h>

#include <unordered_set>

#include "arch/device.hpp"
#include "arch/rr_graph.hpp"

namespace emutile {
namespace {

TEST(Device, SizeForCoversRequest) {
  for (int clbs : {1, 7, 56, 235, 1050}) {
    const DeviceParams p = Device::size_for(clbs, 40, 8);
    EXPECT_GE(p.width * p.height, clbs);
    const Device d(p);
    EXPECT_GE(d.num_iob_sites(), 40);
  }
}

TEST(Device, SiteClassification) {
  const Device d(DeviceParams{4, 3, 8});
  EXPECT_EQ(d.num_clb_sites(), 12);
  EXPECT_EQ(d.num_iob_sites(), kIobsPerPosition * 14);
  for (SiteIndex s = 0; s < static_cast<SiteIndex>(d.num_sites()); ++s)
    EXPECT_NE(d.is_clb_site(s), d.is_iob_site(s));
}

TEST(Device, ClbXyRoundTrip) {
  const Device d(DeviceParams{5, 4, 8});
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 5; ++x) {
      auto [rx, ry] = d.clb_xy(d.clb_site(x, y));
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
}

TEST(Device, IobPositionsCoverPerimeter) {
  const Device d(DeviceParams{4, 3, 8});
  int counts[4] = {0, 0, 0, 0};
  for (int p = 0; p < d.num_iob_sites(); ++p) {
    auto [edge, off] = d.iob_position(d.iob_site(p));
    ++counts[static_cast<int>(edge)];
    EXPECT_GE(off, 0);
  }
  EXPECT_EQ(counts[0], kIobsPerPosition * 4);  // bottom
  EXPECT_EQ(counts[1], kIobsPerPosition * 4);  // top
  EXPECT_EQ(counts[2], kIobsPerPosition * 3);  // left
  EXPECT_EQ(counts[3], kIobsPerPosition * 3);  // right
}

class RrGraphTest : public ::testing::Test {
 protected:
  Device device_{DeviceParams{4, 4, 6}};
  RrGraph rr_{device_};
};

TEST_F(RrGraphTest, NodeCountsMatchFormula) {
  const int w = 4, h = 4, t = 6;
  const std::size_t expected =
      static_cast<std::size_t>(device_.num_clb_sites()) * 15 +
      static_cast<std::size_t>(device_.num_iob_sites()) * 3 +
      static_cast<std::size_t>(w * (h + 1) * t) +
      static_cast<std::size_t>((w + 1) * h * t);
  EXPECT_EQ(rr_.num_nodes(), expected);
}

TEST_F(RrGraphTest, LookupsAreConsistent) {
  const SiteIndex s = device_.clb_site(2, 1);
  for (int p = 0; p < ClbPinModel::kNumIpins; ++p) {
    const RrNodeInfo& n = rr_.node(rr_.ipin(s, p));
    EXPECT_EQ(n.type, RrType::kIpin);
    EXPECT_EQ(n.site, s);
    EXPECT_EQ(n.pin_or_track, p);
  }
  for (int p = 0; p < ClbPinModel::kNumOpins; ++p)
    EXPECT_EQ(rr_.node(rr_.opin(s, p)).type, RrType::kOpin);
  EXPECT_EQ(rr_.node(rr_.sink(s)).type, RrType::kSink);
  EXPECT_EQ(rr_.node(rr_.sink(s)).capacity, ClbPinModel::kNumIpins);
  EXPECT_EQ(rr_.node(rr_.chanx(1, 2, 3)).type, RrType::kChanX);
  EXPECT_EQ(rr_.node(rr_.chany(1, 2, 3)).type, RrType::kChanY);
}

TEST_F(RrGraphTest, OpinsFeedWiresOnly) {
  const SiteIndex s = device_.clb_site(0, 0);
  for (int p = 0; p < ClbPinModel::kNumOpins; ++p) {
    const auto fo = rr_.fanout(rr_.opin(s, p));
    EXPECT_EQ(fo.size(), 6u);  // all tracks of one adjacent channel
    for (RrNodeId n : fo) {
      const RrType ty = rr_.node(n).type;
      EXPECT_TRUE(ty == RrType::kChanX || ty == RrType::kChanY);
    }
  }
}

TEST_F(RrGraphTest, IpinsFeedTheirSink) {
  const SiteIndex s = device_.clb_site(1, 1);
  for (int p = 0; p < ClbPinModel::kNumIpins; ++p) {
    const auto fo = rr_.fanout(rr_.ipin(s, p));
    ASSERT_EQ(fo.size(), 1u);
    EXPECT_EQ(fo[0], rr_.sink(s));
  }
}

TEST_F(RrGraphTest, SinksAreLeaves) {
  for (std::size_t i = 0; i < rr_.num_nodes(); ++i) {
    const RrNodeId id{static_cast<std::uint32_t>(i)};
    if (rr_.node(id).type == RrType::kSink)
      EXPECT_TRUE(rr_.fanout(id).empty());
  }
}

TEST_F(RrGraphTest, WireWireEdgesAreBidirectional) {
  std::unordered_set<std::uint64_t> edges;
  for (std::size_t i = 0; i < rr_.num_nodes(); ++i) {
    const RrNodeId id{static_cast<std::uint32_t>(i)};
    for (RrNodeId nb : rr_.fanout(id))
      edges.insert((static_cast<std::uint64_t>(i) << 32) | nb.value());
  }
  for (std::size_t i = 0; i < rr_.num_nodes(); ++i) {
    const RrNodeId id{static_cast<std::uint32_t>(i)};
    const RrType ti = rr_.node(id).type;
    if (ti != RrType::kChanX && ti != RrType::kChanY) continue;
    for (RrNodeId nb : rr_.fanout(id)) {
      const RrType tn = rr_.node(nb).type;
      if (tn != RrType::kChanX && tn != RrType::kChanY) continue;
      EXPECT_TRUE(edges.count((static_cast<std::uint64_t>(nb.value()) << 32) |
                              id.value()))
          << "missing reverse wire edge";
    }
  }
}

TEST_F(RrGraphTest, SwitchBoxTrackDiscipline) {
  // Straight-through (same channel direction) keeps the track; turns may
  // rotate by one position (mod W) so nets can migrate between tracks.
  const int w = 6;  // tracks_per_channel of the fixture
  for (std::size_t i = 0; i < rr_.num_nodes(); ++i) {
    const RrNodeId id{static_cast<std::uint32_t>(i)};
    const RrNodeInfo& a = rr_.node(id);
    if (a.type != RrType::kChanX && a.type != RrType::kChanY) continue;
    for (RrNodeId nb : rr_.fanout(id)) {
      const RrNodeInfo& b = rr_.node(nb);
      if (b.type != RrType::kChanX && b.type != RrType::kChanY) continue;
      if (a.type == b.type) {
        EXPECT_EQ(a.pin_or_track, b.pin_or_track) << "straight must not rotate";
      } else {
        const int diff =
            ((b.pin_or_track - a.pin_or_track) % w + w) % w;
        EXPECT_TRUE(diff == 0 || diff == 1 || diff == w - 1)
            << "turn rotation limited to one position";
      }
    }
  }
}

TEST_F(RrGraphTest, TracksAreNotPartitioned) {
  // With track rotation at turns, a net entering on any track must be able
  // to reach every other track: BFS over wire-wire edges from one wire
  // should cover wires on all tracks.
  std::vector<std::uint8_t> seen_track(6, 0);
  std::vector<std::uint8_t> visited(rr_.num_nodes(), 0);
  std::vector<RrNodeId> queue{rr_.chanx(0, 1, 0)};
  visited[queue[0].value()] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const RrNodeInfo& info = rr_.node(queue[head]);
    if (info.type == RrType::kChanX || info.type == RrType::kChanY)
      seen_track[static_cast<std::size_t>(info.pin_or_track)] = 1;
    for (RrNodeId nb : rr_.fanout(queue[head])) {
      const RrType ty = rr_.node(nb).type;
      if (ty != RrType::kChanX && ty != RrType::kChanY) continue;
      if (visited[nb.value()]) continue;
      visited[nb.value()] = 1;
      queue.push_back(nb);
    }
  }
  for (int k = 0; k < 6; ++k)
    EXPECT_TRUE(seen_track[static_cast<std::size_t>(k)])
        << "track " << k << " unreachable";
}

TEST_F(RrGraphTest, EveryClbPinReachableFromNeighborChannel) {
  // Each IPIN must have at least one incoming wire edge.
  std::vector<int> indeg(rr_.num_nodes(), 0);
  for (std::size_t i = 0; i < rr_.num_nodes(); ++i)
    for (RrNodeId nb : rr_.fanout(RrNodeId{static_cast<std::uint32_t>(i)}))
      ++indeg[nb.value()];
  for (std::size_t i = 0; i < rr_.num_nodes(); ++i) {
    const RrNodeId id{static_cast<std::uint32_t>(i)};
    if (rr_.node(id).type == RrType::kIpin)
      EXPECT_GT(indeg[i], 0) << "unreachable IPIN";
  }
}

TEST_F(RrGraphTest, HeuristicIsNonNegative) {
  const SiteIndex target = device_.clb_site(3, 3);
  for (std::size_t i = 0; i < rr_.num_nodes(); i += 7)
    EXPECT_GE(rr_.heuristic_to(RrNodeId{static_cast<std::uint32_t>(i)}, target),
              0.0f);
}

TEST(RrGraphCosts, BaseCostsAndDelays) {
  EXPECT_GT(RrGraph::base_cost(RrType::kChanX), 0.0f);
  EXPECT_EQ(RrGraph::base_cost(RrType::kSink), 0.0f);
  EXPECT_GT(RrGraph::intrinsic_delay_ns(RrType::kChanY), 0.0f);
}

}  // namespace
}  // namespace emutile
