// Observability-layer tests: the log-bucketed histogram (bucket math,
// quantile accuracy against the exact percentiles of util/stats.hpp), the
// lock-striped metrics registry under a concurrent hammer, the text/JSON
// expositions (exact text round-trip through parse_metrics_text), snapshot
// merge parity (merged == sum of parts — the fleet-merge contract), and the
// event journal's JSONL output.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_journal.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace emutile {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name) {
    path = fs::path(::testing::TempDir()) / ("emutile-" + name);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// -------------------------------------------------------------- histogram ---

TEST(MetricHistogram, BucketIndexIsMonotoneAndBoundsAreTight) {
  // Every value must land inside its own bucket's [lower, upper] range, and
  // the index must never decrease as values grow.
  std::uint32_t last_index = 0;
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 100ull,
                          1000ull, 123456ull, 1ull << 40, ~0ull}) {
    const std::uint32_t index = MetricHistogram::bucket_index(v);
    ASSERT_LT(index, MetricHistogram::kNumBuckets) << "value " << v;
    EXPECT_GE(index, last_index) << "value " << v;
    last_index = index;
    std::uint64_t lower = 0, upper = 0;
    MetricHistogram::bucket_bounds(index, lower, upper);
    EXPECT_LE(lower, v) << "value " << v;
    EXPECT_GE(upper, v) << "value " << v;
  }
  // Values below 2^kSubBits get exact buckets.
  for (std::uint64_t v = 0; v < 8; ++v) {
    std::uint64_t lower = 0, upper = 0;
    MetricHistogram::bucket_bounds(MetricHistogram::bucket_index(v), lower,
                                   upper);
    EXPECT_EQ(lower, v);
    EXPECT_EQ(upper, v);
  }
}

TEST(MetricHistogram, CountSumMinMaxAreExact) {
  MetricHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  std::uint64_t sum = 0;
  for (std::uint64_t v : {5ull, 100ull, 9000ull, 3ull, 77ull}) {
    h.record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 9000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(MetricHistogram, QuantilesTrackExactPercentilesWithinBucketError) {
  // Log-uniform samples over ~5 decades — the shape latency distributions
  // actually have. The histogram's bucket width is 1/8 of the value's
  // magnitude, so any quantile it reports must sit within ~12.5% of the
  // exact order statistic computed by util/stats.hpp percentile().
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> exponent(0.0, 5.0);
  MetricHistogram h;
  std::vector<double> xs;
  for (int i = 0; i < 20'000; ++i) {
    const auto v =
        static_cast<std::uint64_t>(std::pow(10.0, exponent(rng)));
    h.record(v);
    xs.push_back(static_cast<double>(v));
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = percentile(xs, 100.0 * q);
    const auto approx = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(approx, exact, 0.125 * exact + 1.0)
        << "quantile " << q << ": histogram " << approx << " vs exact "
        << exact;
  }
}

// --------------------------------------------------------------- registry ---

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  MetricCounter& c1 = reg.counter("a.b");
  MetricCounter& c2 = reg.counter("a.b");
  EXPECT_EQ(&c1, &c2);  // same name, same metric
  c1.add(3);
  EXPECT_EQ(reg.counter("a.b").value(), 3u);
  reg.gauge("g").set(-7);
  EXPECT_EQ(reg.gauge("g").value(), -7);
  reg.histogram("h").record(42);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.b"), 3u);
  EXPECT_EQ(snap.gauges.at("g"), -7);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  reg.reset();
  EXPECT_EQ(reg.counter("a.b").value(), 0u);  // zeroed, not erased
  EXPECT_EQ(&reg.counter("a.b"), &c1);
}

TEST(MetricsRegistry, ConcurrentHammerLosesNothing) {
  // Many threads hitting overlapping metric names: first-touch creation
  // races, counter increments, and histogram records must all survive
  // without losing a single event.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        reg.counter("hammer.shared").add();
        reg.counter("hammer.t" + std::to_string(t)).add();
        reg.histogram("hammer.hist").record(
            static_cast<std::uint64_t>(i % 1000));
        reg.gauge("hammer.gauge").add();
        reg.gauge("hammer.gauge").sub();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hammer.shared"),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(snap.counters.at("hammer.t" + std::to_string(t)),
              static_cast<std::uint64_t>(kOpsPerThread));
  EXPECT_EQ(snap.histograms.at("hammer.hist").count,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.gauges.at("hammer.gauge"), 0);
  // Bucket counts are exact too: their total equals the record count.
  std::uint64_t bucket_total = 0;
  for (const auto& [index, c] : snap.histograms.at("hammer.hist").buckets)
    bucket_total += c;
  EXPECT_EQ(bucket_total, snap.histograms.at("hammer.hist").count);
}

// ------------------------------------------------- exposition & round-trip ---

TEST(MetricsSnapshot, TextRoundTripsExactly) {
  MetricsRegistry reg;
  reg.counter("requests.total").add(17);
  reg.gauge("queue.depth").set(-2);
  MetricHistogram& h = reg.histogram("latency_us");
  for (std::uint64_t v : {3ull, 900ull, 4096ull, 4100ull, 1ull << 33})
    h.record(v);

  const MetricsSnapshot snap = reg.snapshot();
  const std::string text = snap.to_text();
  const MetricsSnapshot parsed = parse_metrics_text(text);

  EXPECT_EQ(parsed.counters, snap.counters);
  EXPECT_EQ(parsed.gauges, snap.gauges);
  ASSERT_EQ(parsed.histograms.size(), snap.histograms.size());
  const HistogramSnapshot& a = snap.histograms.at("latency_us");
  const HistogramSnapshot& b = parsed.histograms.at("latency_us");
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
  // And the exposition itself is a fixed point: parse -> print -> same text.
  EXPECT_EQ(parsed.to_text(), text);
}

TEST(MetricsSnapshot, JsonCarriesEverySeries) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(9);
  reg.histogram("h").record(1234);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"c\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
}

TEST(MetricsSnapshot, ParseRejectsGarbage) {
  EXPECT_THROW(static_cast<void>(parse_metrics_text("bogus line here\n")),
               CheckError);
  EXPECT_THROW(static_cast<void>(parse_metrics_text("counter only_name\n")),
               CheckError);
}

TEST(MetricsSnapshot, MergeEqualsSumOfParts) {
  // The fleet-merge contract: merging N instance snapshots yields exactly
  // the snapshot of an imaginary single instance that saw all the traffic.
  MetricsRegistry all;     // the imaginary combined instance
  MetricsRegistry parts[3];
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> value(0, 1'000'000);
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t v = value(rng);
      parts[p].counter("events").add();
      all.counter("events").add();
      parts[p].histogram("latency").record(v);
      all.histogram("latency").record(v);
    }
    parts[p].counter("instance.p" + std::to_string(p)).add(1 + p);
    all.counter("instance.p" + std::to_string(p)).add(1 + p);
  }

  // Merge through the *text exposition*, exactly as the coordinator does.
  MetricsSnapshot merged;
  for (const MetricsRegistry& part : parts)
    merged.merge(parse_metrics_text(part.snapshot().to_text()));

  const MetricsSnapshot expected = all.snapshot();
  EXPECT_EQ(merged.counters, expected.counters);
  const HistogramSnapshot& m = merged.histograms.at("latency");
  const HistogramSnapshot& e = expected.histograms.at("latency");
  EXPECT_EQ(m.count, e.count);
  EXPECT_EQ(m.sum, e.sum);
  EXPECT_EQ(m.min, e.min);
  EXPECT_EQ(m.max, e.max);
  EXPECT_EQ(m.buckets, e.buckets);
  EXPECT_EQ(m.quantile(0.9), e.quantile(0.9));
}

// ---------------------------------------------------------- event journal ---

TEST(EventJournal, WritesOneJsonObjectPerLineWithMonotonicTimestamps) {
  ScratchDir scratch("journal");
  const fs::path path = scratch.path / "out" / "c1" / "events.jsonl";
  {
    EventJournal journal(path, "c1");
    ASSERT_TRUE(journal.ok());
    journal.record("submit", {{"priority", 3}});
    journal.record("session-start", {{"session", 0}});
    journal.record("finalize", {{"state", "finished"}});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t last_t = 0;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"campaign\":\"c1\""), std::string::npos) << line;
    const std::size_t t_pos = line.find("\"t_us\":");
    ASSERT_NE(t_pos, std::string::npos) << line;
    const std::uint64_t t = std::strtoull(line.c_str() + t_pos + 7, nullptr, 10);
    EXPECT_GE(t, last_t);
    last_t = t;
  }
  EXPECT_EQ(lines, 3);
}

TEST(EventJournal, EscapesStringsAndSurvivesUnwritablePath) {
  ScratchDir scratch("journal-esc");
  const fs::path path = scratch.path / "events.jsonl";
  {
    EventJournal journal(path, "c2");
    journal.record("note", {{"text", "quote\" slash\\ and\nnewline"}});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("quote\\\" slash\\\\ and\\nnewline"), std::string::npos)
      << line;

  // A journal that cannot open is inert, never throwing. (A regular file
  // where a parent directory should be makes the path truly unopenable —
  // the constructor otherwise creates missing parents.)
  std::ofstream(scratch.path / "blocker") << "not a directory";
  EventJournal dead(scratch.path / "blocker" / "events.jsonl", "c3");
  EXPECT_FALSE(dead.ok());
  dead.record("ignored");
}

TEST(EventJournal, RecordsCarrySchemaVersionAndTraceId) {
  ScratchDir scratch("journal-schema");
  const fs::path path = scratch.path / "events.jsonl";
  {
    EventJournal journal(path, "c9", "00c0ffee00c0ffee");
    journal.record("submit");
  }
  {
    EventJournal journal(path, "c9");  // no trace: the field stays, empty
    journal.record("finalize");
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("{\"schema\":1,\"t_us\":", 0), 0u) << line;
  EXPECT_NE(line.find("\"trace_id\":\"00c0ffee00c0ffee\""), std::string::npos)
      << line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"schema\":1"), std::string::npos) << line;
  EXPECT_NE(line.find("\"trace_id\":\"\""), std::string::npos) << line;
}

TEST(MetricsSnapshot, ParseRejectsStructuredCorruption) {
  const auto reject = [](const std::string& text) {
    EXPECT_THROW(static_cast<void>(parse_metrics_text(text)), CheckError)
        << text;
  };
  // Every numeric field goes through the strict parser: digits only, full
  // consume, no overflow. istream extraction would wrap or zero these.
  reject("counter c 99999999999999999999\n");       // > 2^64-1
  reject("counter c -5\n");                          // counters are unsigned
  reject("counter c 5 extra\n");                     // trailing token
  reject("counter c 0x10\n");                        // no hex
  reject("counter c\n");                             // truncated
  reject("gauge g 9223372036854775808\n");           // > int64 max magnitude
  reject("hist h count=1 sum=2\n");                  // truncated hist line
  reject("hist h count=1 sum=2 min=2 max=2 p50=2 p90=2 p99=2\n");  // no buckets
  reject(
      "hist h count=1 sum=2 min=2 max=2 p50=2 p90=2 p99=2 buckets=5:\n");
  reject(
      "hist h count=1 sum=2 min=2 max=2 p50=2 p90=2 p99=2 buckets=9999:1\n");
  reject(
      "hist h count=2 sum=4 min=2 max=2 p50=2 p90=2 p99=2 buckets=4:1,4:1\n");
  reject(
      "hist h count=2 sum=4 min=1 max=3 p50=2 p90=2 p99=2 buckets=3:1,1:1\n");
  // Duplicate series would silently lose a shard's worth of data on merge.
  reject("counter dup 1\ncounter dup 2\n");
  reject("gauge dup 1\ngauge dup 2\n");
  reject(
      "hist dup count=1 sum=2 min=2 max=2 p50=2 p90=2 p99=2 buckets=2:1\n"
      "hist dup count=1 sum=2 min=2 max=2 p50=2 p90=2 p99=2 buckets=2:1\n");

  // The in-range forms of the same lines parse fine.
  const MetricsSnapshot ok = parse_metrics_text(
      "counter c 18446744073709551615\n"
      "gauge g -9223372036854775807\n"
      "hist h count=2 sum=4 min=1 max=3 p50=2 p90=2 p99=2 buckets=1:1,3:1\n");
  EXPECT_EQ(ok.counters.at("c"), 18446744073709551615ull);
  EXPECT_EQ(ok.gauges.at("g"), -9223372036854775807ll);
  EXPECT_EQ(ok.histograms.at("h").buckets.size(), 2u);
}

}  // namespace
}  // namespace emutile
