// Property-based sweeps (parameterized gtest): algebraic identities on
// truth tables, semantics preservation through every netlist transformation,
// placer/router legality across seeds, ECO confinement across seeds, engine
// monotonicity properties, and round-trip/robustness fuzzing of the campaign
// wire formats (spec and mergeable report).

#include <gtest/gtest.h>

#include "campaign/campaign_report_io.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "core/flow.hpp"
#include "core/region_mask.hpp"
#include "core/tiling_engine.hpp"
#include "netlist/blif_parser.hpp"
#include "obs/metrics.hpp"
#include "netlist/blif_writer.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

// ---------------------------------------------------------------- truth tables

class TruthTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TruthTableProperty, ShannonExpansionIdentity) {
  // f(x) == x_i ? f|x_i=1 : f|x_i=0 for every variable.
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.next_below(5));  // 2..6
  TruthTable f(n);
  for (unsigned m = 0; m < f.num_minterms(); ++m)
    f.set_bit(m, rng.next_bool(0.5));
  for (int var = 0; var < n; ++var) {
    const TruthTable f0 = f.cofactor(var, false);
    const TruthTable f1 = f.cofactor(var, true);
    for (unsigned m = 0; m < f.num_minterms(); ++m) {
      const unsigned low = m & ((1u << var) - 1u);
      const unsigned high = (m >> (var + 1)) << var;
      const unsigned reduced = high | low;
      const bool expect = ((m >> var) & 1u) ? f1.eval(reduced) : f0.eval(reduced);
      EXPECT_EQ(f.eval(m), expect) << "var " << var << " minterm " << m;
    }
  }
}

TEST_P(TruthTableProperty, ComplementIsInvolution) {
  Rng rng(GetParam());
  const int n = 1 + static_cast<int>(rng.next_below(6));
  TruthTable f(n);
  for (unsigned m = 0; m < f.num_minterms(); ++m)
    f.set_bit(m, rng.next_bool(0.5));
  EXPECT_EQ(f.complement().complement(), f);
  for (unsigned m = 0; m < f.num_minterms(); ++m)
    EXPECT_NE(f.eval(m), f.complement().eval(m));
}

TEST_P(TruthTableProperty, PermuteRoundTrip) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.next_below(4));  // 2..5
  TruthTable f(n);
  for (unsigned m = 0; m < f.num_minterms(); ++m)
    f.set_bit(m, rng.next_bool(0.5));
  // Random permutation and its inverse.
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<int> inv(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
  EXPECT_EQ(f.permute(perm).permute(inv), f);
}

TEST_P(TruthTableProperty, DependsOnAgreesWithCofactors) {
  Rng rng(GetParam());
  const int n = 1 + static_cast<int>(rng.next_below(5));
  TruthTable f(n);
  for (unsigned m = 0; m < f.num_minterms(); ++m)
    f.set_bit(m, rng.next_bool(0.3));
  for (int var = 0; var < n; ++var)
    EXPECT_EQ(f.depends_on(var), f.cofactor(var, false) != f.cofactor(var, true));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TruthTableProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------- transforms

class TransformProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformProperty, BlifRoundTripPreservesBehaviour) {
  const Netlist original =
      test::make_random_netlist(40 + static_cast<int>(GetParam()) * 7,
                                GetParam() * 31 + 5);
  const Netlist reparsed = parse_blif_string(to_blif_string(original));
  const auto patterns =
      random_patterns(original.primary_inputs().size(), 48, GetParam());
  EXPECT_EQ(test::run_patterns(original, patterns),
            test::run_patterns(reparsed, patterns));
}

TEST_P(TransformProperty, SynthesizePreservesBehaviour) {
  Rng rng(GetParam() * 97 + 3);
  Netlist nl("wide");
  const int width = 5 + static_cast<int>(rng.next_below(4));
  const Bus in = b_inputs(nl, "i", width);
  for (int f = 0; f < 3; ++f) {
    TruthTable tt(width);
    for (unsigned m = 0; m < tt.num_minterms(); ++m)
      tt.set_bit(m, rng.next_bool(0.5));
    nl.add_output("y" + std::to_string(f),
                  nl.cell_output(nl.add_lut("f" + std::to_string(f), tt, in)));
  }
  const auto patterns = exhaustive_patterns(static_cast<std::size_t>(width));
  const auto before = test::run_patterns(nl, patterns);
  synthesize(nl);
  for (CellId id : nl.live_cells()) {
    if (nl.cell(id).kind == CellKind::kLut) {
      ASSERT_LE(nl.cell(id).function.num_inputs(), 4);
    }
  }
  EXPECT_EQ(test::run_patterns(nl, patterns), before);
}

TEST_P(TransformProperty, PackerInvariantsAcrossSeeds) {
  const Netlist nl = test::make_random_netlist(
      30 + static_cast<int>(GetParam()) * 11, GetParam() * 13 + 7, 0.15);
  const PackedDesign packed = pack(nl);
  packed.validate(nl);
  // Density: pairing should do clearly better than one LUT per CLB.
  EXPECT_LE(packed.num_clbs(), nl.num_luts());
  EXPECT_GE(packed.num_clbs(), (nl.num_luts() + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransformProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------- physical

class PhysicalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhysicalProperty, FullFlowLegalAcrossSeeds) {
  FlowParams fp;
  fp.seed = GetParam();
  fp.slack = 0.25;
  TiledDesign d =
      build_flat(test::make_random_netlist(60, GetParam() * 3 + 1), fp);
  d.validate();
  EXPECT_EQ(d.routing->count_overused(), 0u);
  EXPECT_EQ(d.routing->audit_occupancy(), 0u);
}

TEST_P(PhysicalProperty, TiledEcoConfinementAcrossSeeds) {
  TilingParams tp;
  tp.seed = GetParam();
  tp.target_overhead = 0.25;
  tp.num_tiles = 8;
  TiledDesign d = TilingEngine::build(
      test::make_random_netlist(90, GetParam() * 17 + 2), tp);

  // Snapshot placement.
  std::vector<SiteIndex> before(d.packed.inst_bound(), kInvalidSite);
  for (InstId id : d.packed.live_insts())
    before[id.value()] = d.placement->site_of(id);

  // Modify one LUT.
  CellId victim;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) victim = id;
  d.netlist.set_lut_function(victim,
                             d.netlist.cell(victim).function.complement());
  EcoChange change;
  change.modified_cells = {victim};
  const EcoOutcome out = TilingEngine::apply_change(d, change, EcoOptions{});
  ASSERT_TRUE(out.success);
  d.validate();

  std::unordered_set<std::uint32_t> affected;
  for (TileId t : out.affected) affected.insert(t.value());
  for (InstId id : d.packed.live_insts()) {
    const SiteIndex s = before[id.value()];
    if (s == kInvalidSite || !d.device->is_clb_site(s)) continue;
    auto [x, y] = d.device->clb_xy(s);
    if (affected.count(d.tiles->tile_at(x, y).value())) continue;
    EXPECT_EQ(d.placement->site_of(id), s) << "locked instance moved";
  }
}

TEST_P(PhysicalProperty, EcoPreservesBehaviourAcrossSeeds) {
  TilingParams tp;
  tp.seed = GetParam() ^ 0xFACE;
  tp.target_overhead = 0.25;
  tp.num_tiles = 6;
  TiledDesign d = TilingEngine::build(
      test::make_random_netlist(70, GetParam() * 29 + 11), tp);
  const auto patterns =
      random_patterns(d.netlist.primary_inputs().size(), 48, GetParam());
  const auto before = test::run_patterns(d.netlist, patterns);

  // Add observation-style logic (behaviour-neutral).
  CellId anchor;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) {
      anchor = id;
      break;
    }
  EcoChange change;
  const CellId probe = d.netlist.add_lut("p", TruthTable::buffer(),
                                         {d.netlist.cell_output(anchor)});
  const CellId ff = d.netlist.add_dff("pf", d.netlist.cell_output(probe));
  change.added_cells = {probe, ff};
  change.anchor_cells = {anchor};
  ASSERT_TRUE(TilingEngine::apply_change(d, change, EcoOptions{}).success);
  EXPECT_EQ(test::run_patterns(d.netlist, patterns), before);
  d.validate();
}

INSTANTIATE_TEST_SUITE_P(Sweep, PhysicalProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------- engine

TEST(EngineProperty, ExpansionIsMonotoneInDemand) {
  TilingParams tp;
  tp.seed = 5;
  tp.target_overhead = 0.25;
  tp.num_tiles = 9;
  TiledDesign d = TilingEngine::build(test::make_random_netlist(90, 5), tp);
  std::vector<TileId> prev;
  for (int need = 1; need < 24; need += 4) {
    std::vector<TileId> cur;
    try {
      cur = TilingEngine::expand_for_capacity(d, {TileId{0}}, need);
    } catch (const CheckError&) {
      break;  // device exhausted
    }
    EXPECT_GE(cur.size(), prev.size());
    // Superset property: the affected set only ever grows.
    for (TileId t : prev)
      EXPECT_NE(std::find(cur.begin(), cur.end(), t), cur.end());
    prev = cur;
  }
}

TEST(EngineProperty, RegionMaskRipImpliesAllowed) {
  const Device device(DeviceParams{10, 10, 6});
  const RrGraph rr(device);
  const TileGrid grid(10, 10, 3, 3);
  for (int t = 0; t < grid.num_tiles(); ++t) {
    std::vector<std::uint8_t> affected(
        static_cast<std::size_t>(grid.num_tiles()), 0);
    affected[static_cast<std::size_t>(t)] = 1;
    const RegionMasks masks = build_region_masks(rr, grid, affected);
    std::size_t allowed_count = 0;
    for (std::size_t i = 0; i < rr.num_nodes(); ++i) {
      if (masks.rip[i]) {
        EXPECT_TRUE(masks.allowed[i]) << "rip outside allowed";
      }
      if (masks.allowed[i]) ++allowed_count;
    }
    EXPECT_GT(allowed_count, 0u);
  }
}

TEST(EngineProperty, MasksOfDisjointTilesDontOverlapInterior) {
  const Device device(DeviceParams{12, 12, 6});
  const RrGraph rr(device);
  const TileGrid grid(12, 12, 3, 3);
  // Two non-adjacent tiles: their RIP sets must be disjoint.
  std::vector<std::uint8_t> a(9, 0), b(9, 0);
  a[grid.tile_at(0, 0).value()] = 1;
  b[grid.tile_at(11, 11).value()] = 1;
  const RegionMasks ma = build_region_masks(rr, grid, a);
  const RegionMasks mb = build_region_masks(rr, grid, b);
  for (std::size_t i = 0; i < rr.num_nodes(); ++i)
    EXPECT_FALSE(ma.rip[i] && mb.rip[i]);
}

// ------------------------------------------------------- wire format fuzz ---

/// A random but internally consistent campaign spec drawn from the catalog.
CampaignSpec random_campaign_spec(Rng& rng) {
  static const char* kDesigns[] = {"9sym", "styr", "sand", "c499"};
  static const ErrorKind kKinds[] = {ErrorKind::kLutFunction,
                                     ErrorKind::kWrongPolarity,
                                     ErrorKind::kWrongConnection};
  CampaignSpec spec;
  const std::size_t nd = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < nd; ++i)
    spec.add_catalog_design(kDesigns[rng.next_below(4)]);
  spec.error_kinds.clear();
  const std::size_t nk = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < nk; ++i)
    spec.error_kinds.push_back(kKinds[rng.next_below(3)]);
  spec.tilings.clear();
  const std::size_t nt = 1 + rng.next_below(2);
  for (std::size_t i = 0; i < nt; ++i) {
    TilingParams t;
    t.num_tiles = static_cast<int>(1 + rng.next_below(24));
    t.target_overhead = rng.next_double();      // arbitrary-precision doubles
    t.placer_effort = 0.05 + rng.next_double(); // exercise exact round-trip
    t.tracks_per_channel = static_cast<int>(6 + rng.next_below(12));
    t.route_headroom = static_cast<int>(rng.next_below(8));
    spec.tilings.push_back(t);
  }
  spec.sessions_per_scenario = static_cast<int>(rng.next_below(6));
  spec.master_seed = rng();
  spec.num_patterns = 1 + rng.next_below(512);
  spec.localizer.probes_per_iteration = static_cast<int>(1 + rng.next_below(9));
  spec.localizer.max_iterations = static_cast<int>(1 + rng.next_below(30));
  spec.localizer.stop_at = 1 + rng.next_below(4);
  spec.localizer.seed = rng();
  spec.localizer.eco.seed = rng();
  spec.localizer.eco.placer_effort = rng.next_double();
  spec.localizer.eco.max_region_expansions =
      static_cast<int>(rng.next_below(9));
  spec.eco.seed = rng();
  spec.eco.placer_effort = rng.next_double();
  spec.eco.max_region_expansions = static_cast<int>(rng.next_below(9));
  spec.measure_baselines = rng.next_bool(0.5);
  if (rng.next_bool(0.3)) {
    const std::size_t count = 2 + rng.next_below(4);
    spec = spec.shard(rng.next_below(count), count);
  }
  if (rng.next_bool(0.5)) {
    for (std::size_t s = 0; s < spec.num_scenarios(); ++s) {
      spec.sessions_by_scenario.push_back(
          static_cast<int>(rng.next_below(7)));
      spec.replica_base.push_back(static_cast<int>(rng.next_below(40)));
    }
  }
  return spec;
}

/// A random accumulator (possibly empty).
Accumulator random_accumulator(Rng& rng) {
  Accumulator acc;
  const std::size_t n = rng.next_below(6);
  for (std::size_t i = 0; i < n; ++i)
    acc.add(rng.next_double() * 1e4 - 5e3);
  return acc;
}

/// A random report of the shape build_report/merge produce — counters need
/// not be mutually consistent for the codec to round-trip them exactly.
CampaignReport random_campaign_report(Rng& rng) {
  static const char* kNames[] = {"9sym", "styr", "rand-a", "x"};
  static const ErrorKind kKinds[] = {ErrorKind::kLutFunction,
                                     ErrorKind::kWrongPolarity,
                                     ErrorKind::kWrongConnection};
  CampaignReport r;
  r.sessions = rng.next_below(1000);
  r.completed = rng.next_below(1000);
  r.cancelled = rng.next_below(10);
  r.failed = rng.next_below(10);
  r.detected = rng.next_below(1000);
  r.narrowed = rng.next_below(1000);
  r.corrected = rng.next_below(1000);
  r.clean = rng.next_below(1000);
  r.debug_work = random_accumulator(rng);
  r.build_work = random_accumulator(rng);
  r.debug_work_p50 = rng.next_double() * 1e6;
  r.debug_work_p90 = rng.next_double() * 1e6;
  r.debug_work_p99 = rng.next_double() * 1e6;
  r.speedup_quick_geomean = rng.next_double() * 40.0;
  r.speedup_incremental_geomean = rng.next_double() * 40.0;
  r.speedup_full_geomean = rng.next_double() * 40.0;
  r.wall_seconds = rng.next_double() * 1e3;
  r.num_threads = 1 + rng.next_below(64);
  r.cache_hits = rng.next_below(500);
  r.cache_misses = rng.next_below(500);
  const std::size_t samples = rng.next_below(12);
  for (std::size_t i = 0; i < samples; ++i)
    r.debug_work_samples.push_back(rng.next_double() * 1e5);
  const std::size_t scenarios = rng.next_below(5);
  for (std::size_t i = 0; i < scenarios; ++i) {
    ScenarioStats s;
    s.design = kNames[rng.next_below(4)];
    s.error_kind = kKinds[rng.next_below(3)];
    s.num_tiles = static_cast<int>(rng.next_below(30));
    s.target_overhead = rng.next_double();
    // Counters respect the aggregation invariants (detected <= completed,
    // clean <= corrected <= detected) — what build_report/merge always emit,
    // and what the derived interval columns assume.
    const std::size_t completed = rng.next_below(40);
    s.cancelled = rng.next_below(5);
    s.failed = rng.next_below(5);
    s.sessions = completed + s.cancelled + s.failed;
    s.detected = rng.next_below(completed + 1);
    s.narrowed = rng.next_below(s.detected + 1);
    s.corrected = rng.next_below(s.detected + 1);
    s.clean = rng.next_below(s.corrected + 1);
    s.suspects = random_accumulator(rng);
    s.iterations = random_accumulator(rng);
    s.debug_work = random_accumulator(rng);
    s.build_work = random_accumulator(rng);
    s.baseline.measured = rng.next_bool(0.5);
    if (s.baseline.measured) {
      s.baseline.speedup_quick = 0.1 + rng.next_double() * 30.0;
      s.baseline.speedup_incremental = 0.1 + rng.next_double() * 30.0;
      s.baseline.speedup_full = 0.1 + rng.next_double() * 30.0;
    }
    r.scenarios.push_back(s);
  }
  return r;
}

class WireFormatFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFormatFuzz, RandomSpecsRoundTripExactly) {
  Rng rng(GetParam() * 7919 + 1);
  for (int i = 0; i < 8; ++i) {
    const CampaignSpec spec = random_campaign_spec(rng);
    const std::string text = serialize_campaign_spec(spec);
    const CampaignSpec parsed = parse_campaign_spec(text);
    EXPECT_EQ(serialize_campaign_spec(parsed), text);
    EXPECT_EQ(spec_content_hash(parsed), spec_content_hash(spec));
    // Behavioral identity: the same jobs with the same seeds.
    const auto a = spec.expand();
    const auto b = parsed.expand();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].index, b[j].index);
      EXPECT_EQ(a[j].scenario, b[j].scenario);
      EXPECT_EQ(a[j].replica, b[j].replica);
      EXPECT_EQ(a[j].options.seed, b[j].options.seed);
    }
  }
}

TEST_P(WireFormatFuzz, RandomReportsRoundTripExactly) {
  Rng rng(GetParam() * 104729 + 3);
  for (int i = 0; i < 8; ++i) {
    const CampaignReport report = random_campaign_report(rng);
    const std::string text = serialize_campaign_report(report);
    const CampaignReport parsed = parse_campaign_report(text);
    // The mergeable form is complete: identical re-serialization and
    // identical presentation bytes (which also covers the derived interval
    // columns — they are pure functions of the round-tripped state).
    EXPECT_EQ(serialize_campaign_report(parsed), text);
    EXPECT_EQ(parsed.to_csv(), report.to_csv());
    EXPECT_EQ(parsed.to_json(), report.to_json());
  }
}

TEST_P(WireFormatFuzz, MutatedInputsErrorCleanly) {
  // Any corruption of a valid serialization must either still parse (the
  // mutation can land in free text like a design name) or throw CheckError —
  // never crash, hang, or surface any other exception type.
  Rng rng(GetParam() * 31 + 17);
  const std::string spec_text =
      serialize_campaign_spec(random_campaign_spec(rng));
  const std::string report_text =
      serialize_campaign_report(random_campaign_report(rng));
  const auto mutate = [&rng](std::string text) {
    switch (rng.next_below(3)) {
      case 0:  // truncate
        text.resize(rng.next_below(text.size() + 1));
        break;
      case 1: {  // corrupt one byte
        if (!text.empty())
          text[rng.next_below(text.size())] =
              static_cast<char>(' ' + rng.next_below(95));
        break;
      }
      default: {  // duplicate a line somewhere
        const std::size_t cut = rng.next_below(text.size() + 1);
        text.insert(cut, "sessions_per_scenario 2\n");
        break;
      }
    }
    return text;
  };
  for (int i = 0; i < 40; ++i) {
    try {
      static_cast<void>(parse_campaign_spec(mutate(spec_text)));
    } catch (const CheckError&) {
      // expected for most mutations
    }
    try {
      static_cast<void>(parse_campaign_report(mutate(report_text)));
    } catch (const CheckError&) {
    }
  }
}

/// A metrics snapshot with random counters, gauges, and histograms —
/// exercised through a registry so bucket layout matches production.
std::string random_metrics_text(Rng& rng) {
  MetricsRegistry registry;
  const std::size_t n_counters = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < n_counters; ++i)
    registry.counter("fuzz.counter." + std::to_string(i))
        .add(rng.next_below(1ull << 40));
  const std::size_t n_gauges = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < n_gauges; ++i)
    registry.gauge("fuzz.gauge." + std::to_string(i))
        .set(static_cast<std::int64_t>(rng.next_below(1ull << 20)) -
             (1 << 19));
  const std::size_t n_hists = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < n_hists; ++i) {
    MetricHistogram& hist = registry.histogram("fuzz.hist." + std::to_string(i));
    const std::size_t samples = 1 + rng.next_below(64);
    for (std::size_t j = 0; j < samples; ++j)
      hist.record(rng.next_below(1ull << (1 + rng.next_below(50))));
  }
  return registry.snapshot().to_text();
}

TEST_P(WireFormatFuzz, RandomMetricsRoundTripExactly) {
  Rng rng(GetParam() * 6151 + 11);
  for (int i = 0; i < 8; ++i) {
    const std::string text = random_metrics_text(rng);
    const MetricsSnapshot parsed = parse_metrics_text(text);
    // parse(to_text(s)) == s byte-for-byte: names, values, and every sparse
    // bucket survive, so fleet merges over the wire lose nothing.
    EXPECT_EQ(parsed.to_text(), text);
  }
}

TEST_P(WireFormatFuzz, MutatedMetricsErrorCleanlyOrStayConsistent) {
  // Same contract as the spec/report fuzz: any corruption either throws
  // CheckError or yields a snapshot whose own re-serialization is stable.
  Rng rng(GetParam() * 193 + 7);
  const std::string text = random_metrics_text(rng);
  const auto mutate = [&rng](std::string t) {
    switch (rng.next_below(3)) {
      case 0:  // truncate
        t.resize(rng.next_below(t.size() + 1));
        break;
      case 1: {  // corrupt one byte
        if (!t.empty())
          t[rng.next_below(t.size())] =
              static_cast<char>(' ' + rng.next_below(95));
        break;
      }
      default: {  // duplicate a line somewhere (duplicate series must throw)
        const std::size_t cut = rng.next_below(t.size() + 1);
        t.insert(cut, "counter fuzz.counter.0 7\n");
        break;
      }
    }
    return t;
  };
  for (int i = 0; i < 40; ++i) {
    try {
      const MetricsSnapshot parsed = parse_metrics_text(mutate(text));
      EXPECT_EQ(parse_metrics_text(parsed.to_text()).to_text(),
                parsed.to_text());
    } catch (const CheckError&) {
      // expected for most mutations
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WireFormatFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(WireFormatRobustness, MalformedReportsThrowWithContext) {
  const auto reject = [](const std::string& text) {
    EXPECT_THROW(static_cast<void>(parse_campaign_report(text)), CheckError)
        << text;
  };
  reject("");                                    // no header
  reject("emutile-report v1\n");                 // wrong (older) version
  reject("emutile-report v2\n");                 // truncated after header
  reject("emutile-report v2\ncampaign 1 1 0 0 1 1 1 1\n");  // truncated
  reject(
      "emutile-report v2\ncampaign 1 1 0 0 1 1 1 x\n");  // non-numeric count
  // A structurally complete report with a scenario-count lie.
  CampaignReport r;
  r.scenarios.resize(1);
  r.scenarios[0].design = "9sym";
  std::string text = serialize_campaign_report(r);
  const std::size_t pos = text.find("scenarios 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "scenarios 3");
  reject(text);
  // Trailing garbage after the footer.
  reject(serialize_campaign_report(CampaignReport{}) + "leftover\n");
  // Whitespace-hostile design names cannot be serialized at all.
  CampaignReport bad;
  bad.scenarios.resize(1);
  bad.scenarios[0].design = "two words";
  EXPECT_THROW(static_cast<void>(serialize_campaign_report(bad)), CheckError);
}

TEST(EngineProperty, RetilePreservesPlacementAndRouting) {
  TilingParams tp;
  tp.seed = 7;
  tp.num_tiles = 12;
  TiledDesign d = TilingEngine::build(test::make_random_netlist(80, 7), tp);
  std::vector<SiteIndex> before(d.packed.inst_bound(), kInvalidSite);
  for (InstId id : d.packed.live_insts())
    before[id.value()] = d.placement->site_of(id);
  const std::size_t wires_before = d.routing->total_wire_nodes();

  TilingEngine::retile(d, 4);
  EXPECT_LE(d.tiles->num_tiles(), 8);
  for (InstId id : d.packed.live_insts())
    EXPECT_EQ(d.placement->site_of(id), before[id.value()]);
  EXPECT_EQ(d.routing->total_wire_nodes(), wires_before);
  d.validate();
}

}  // namespace
}  // namespace emutile
