// Hierarchy and back-annotation tests.

#include <gtest/gtest.h>

#include "core/tiling_engine.hpp"
#include "hier/hierarchy.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

TEST(Hierarchy, BlocksAndBinding) {
  Netlist nl = test::make_adder4();
  DesignHierarchy h("adder");
  const HierId blk_a = h.add_block("low_bits");
  const HierId blk_b = h.add_block("high_bits");
  EXPECT_EQ(h.num_blocks(), 2u);
  EXPECT_EQ(h.name(blk_a), "low_bits");

  // Bind half the LUTs to each block.
  int i = 0;
  for (CellId id : nl.live_cells())
    if (nl.cell(id).kind == CellKind::kLut)
      h.bind_cell(id, (i++ % 2) ? blk_a : blk_b);
  h.bind_remaining(nl, blk_a);

  for (CellId id : nl.live_cells())
    EXPECT_TRUE(h.block_of(id).valid());
  EXPECT_THROW(h.bind_cell(nl.live_cells().front(), blk_b), CheckError);
}

TEST(Hierarchy, TraceToBlocksDeduplicates) {
  Netlist nl = test::make_adder4();
  DesignHierarchy h("adder");
  const HierId blk = h.add_block("all");
  h.bind_remaining(nl, blk);
  std::vector<CellId> changed{nl.live_cells()[0], nl.live_cells()[1]};
  const auto blocks = h.trace_to_blocks(changed);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], blk);
}

TEST(Hierarchy, BackAnnotationReachesTiles) {
  TilingParams tp;
  tp.seed = 3;
  tp.target_overhead = 0.25;
  tp.num_tiles = 4;
  TiledDesign d =
      TilingEngine::build(test::make_random_netlist(60, 3), tp);

  // Two blocks: split the LUT population between them.
  DesignHierarchy h("rand");
  const HierId blk_a = h.add_block("half_a");
  const HierId blk_b = h.add_block("half_b");
  int i = 0;
  for (CellId id : d.netlist.live_cells())
    h.bind_cell(id, (i++ % 2) ? blk_a : blk_b);

  // Quick_ECO granularity: one changed cell drags in its whole BLOCK's
  // tiles — the coarseness tiling improves on. The trace must cover the
  // tile of every instance holding a block cell, in particular the changed
  // cell's own tile.
  CellId cell;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) {
      cell = id;
      break;
    }
  const auto tiles = trace_change_to_tiles(h, d, {cell});
  ASSERT_GE(tiles.size(), 1u);
  const InstId inst = d.packed.inst_of_cell(cell);
  auto [x, y] = d.device->clb_xy(d.placement->site_of(inst));
  EXPECT_NE(std::find(tiles.begin(), tiles.end(), d.tiles->tile_at(x, y)),
            tiles.end());

  // Both blocks together trace to at least as many tiles as one.
  const auto all_tiles = annotate_blocks_to_tiles(h, d, {blk_a, blk_b});
  EXPECT_GE(all_tiles.size(), tiles.size());
}

}  // namespace
}  // namespace emutile
