// Debug-flow tests: error injection, test-logic insertion/removal,
// detection, localization, correction, and the complete session.

#include <gtest/gtest.h>

#include "core/tiling_engine.hpp"
#include "debug/corrector.hpp"
#include "debug/debug_loop.hpp"
#include "debug/detector.hpp"
#include "debug/error_injector.hpp"
#include "debug/localizer.hpp"
#include "debug/test_logic.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

TEST(ErrorInjector, MutatesAndReverts) {
  for (ErrorKind kind : {ErrorKind::kLutFunction, ErrorKind::kWrongPolarity,
                         ErrorKind::kWrongConnection}) {
    Netlist golden = test::make_random_netlist(40, 11);
    Netlist dut = golden;
    const InjectedError err = inject_error(dut, kind, 5);
    dut.validate();
    EXPECT_FALSE(err.description.empty());

    // The mutation must change something observable or at least structural.
    const Cell& mutated = dut.cell(err.cell);
    const Cell& original = golden.cell(err.cell);
    const bool structurally_different =
        mutated.function != original.function ||
        mutated.inputs != original.inputs;
    EXPECT_TRUE(structurally_different) << to_string(kind);

    revert_error(dut, err);
    dut.validate();
    const Cell& reverted = dut.cell(err.cell);
    EXPECT_EQ(reverted.function, original.function);
    EXPECT_EQ(reverted.inputs, original.inputs);
  }
}

TEST(ErrorInjector, WrongConnectionNeverCreatesCycle) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Netlist nl = test::make_random_netlist(30, seed + 100);
    inject_error(nl, ErrorKind::kWrongConnection, seed);
    EXPECT_NO_THROW(topo_order_luts(nl)) << "seed " << seed;
  }
}

TEST(TestLogic, ObservationSignatureMatchesSoftwareModel) {
  Netlist nl = test::make_seq4();
  const NetId probe = nl.cell(nl.primary_outputs()[0]).inputs[0];
  const ObservationPlan plan = insert_observation(nl, {probe}, "t");
  ASSERT_EQ(plan.probes.size(), 1u);

  Simulator sim(nl);
  sim.reset();
  unsigned soft = 0;
  const auto patterns = random_patterns(1, 48, 3);
  for (const Pattern& p : patterns) {
    sim.step(p);
    soft = signature_step(soft, sim.net_value(probe));
  }
  const unsigned hard = read_signature(
      plan.probes[0], [&](CellId ff) { return sim.ff_state(ff); });
  EXPECT_EQ(hard, soft);
}

TEST(TestLogic, ObservationDoesNotPerturbFunction) {
  Netlist nl = test::make_seq4();
  const auto patterns = random_patterns(1, 32, 9);
  const auto before = test::run_patterns(nl, patterns);
  const NetId probe = nl.cell(nl.primary_outputs()[1]).inputs[0];
  insert_observation(nl, {probe}, "t");
  EXPECT_EQ(test::run_patterns(nl, patterns), before);
}

TEST(TestLogic, RemovalRestoresNetlist) {
  Netlist nl = test::make_seq4();
  const std::size_t cells_before = nl.num_cells();
  const NetId probe = nl.cell(nl.primary_outputs()[0]).inputs[0];
  const ObservationPlan plan = insert_observation(nl, {probe}, "t");
  EXPECT_GT(nl.num_cells(), cells_before);
  remove_added_cells(nl, plan.added_cells);
  EXPECT_EQ(nl.num_cells(), cells_before);
  nl.validate();
}

TEST(TestLogic, ControlPointOverridesNet) {
  Netlist nl = test::make_seq4();
  const auto patterns = random_patterns(1, 64, 5);
  const auto before = test::run_patterns(nl, patterns);
  // Control the counter enable path: outputs must eventually diverge
  // (injection forces values 1 cycle in 8).
  const NetId target = nl.cell(nl.primary_outputs()[0]).inputs[0];
  const ControlPoint cp = insert_control(nl, target, "ctl");
  EXPECT_FALSE(cp.added_cells.empty());
  const auto after = test::run_patterns(nl, patterns);
  EXPECT_NE(before, after);

  remove_control(nl, cp);
  nl.validate();
  EXPECT_EQ(test::run_patterns(nl, patterns), before);
}

TEST(Detector, FindsInjectedError) {
  Netlist golden = test::make_random_netlist(50, 17);
  Netlist dut = golden;
  inject_error(dut, ErrorKind::kWrongPolarity, 3);
  const auto patterns =
      random_patterns(golden.primary_inputs().size(), 256, 8);
  const DetectResult r = detect_errors(dut, golden, patterns);
  EXPECT_TRUE(r.error_detected);
  EXPECT_LT(r.failing_output, golden.primary_outputs().size());
}

TEST(Detector, CleanDesignPasses) {
  Netlist golden = test::make_random_netlist(50, 17);
  const auto patterns =
      random_patterns(golden.primary_inputs().size(), 128, 8);
  const DetectResult r = detect_errors(golden, golden, patterns);
  EXPECT_FALSE(r.error_detected);
  EXPECT_EQ(r.cycles_run, 128u);
}

TEST(Localizer, OutputConeCoversInjectionSite) {
  Netlist golden = test::make_random_netlist(60, 23);
  Netlist dut = golden;
  const InjectedError err = inject_error(dut, ErrorKind::kWrongPolarity, 7);
  const auto patterns =
      random_patterns(golden.primary_inputs().size(), 256, 5);
  const DetectResult det = detect_errors(dut, golden, patterns);
  ASSERT_TRUE(det.error_detected);
  const auto cone = output_cone(dut, det.failing_output);
  EXPECT_NE(std::find(cone.begin(), cone.end(), err.cell), cone.end())
      << "failing output cone must contain the buggy cell";
}

TEST(Localizer, NarrowsCandidatesOnTiledDesign) {
  Netlist golden = test::make_random_netlist(80, 31);
  Netlist dut_nl = golden;
  const InjectedError err = inject_error(dut_nl, ErrorKind::kWrongPolarity, 2);

  TilingParams tp;
  tp.seed = 4;
  tp.target_overhead = 0.30;
  tp.num_tiles = 6;
  TiledDesign dut = TilingEngine::build(std::move(dut_nl), tp);

  const auto patterns =
      random_patterns(golden.primary_inputs().size(), 192, 12);
  const DetectResult det = detect_errors(dut.netlist, golden, patterns);
  ASSERT_TRUE(det.error_detected);

  LocalizerOptions lo;
  lo.seed = 3;
  const LocalizeResult loc =
      localize(dut, golden, det.failing_output, patterns, lo);
  EXPECT_FALSE(loc.iterations.empty());
  EXPECT_TRUE(loc.narrowed);
  // The true error cell must survive the narrowing.
  EXPECT_NE(std::find(loc.suspects.begin(), loc.suspects.end(), err.cell),
            loc.suspects.end());
  // Test logic was cleaned up.
  dut.validate();
  EXPECT_GT(loc.total_effort.place_ms + loc.total_effort.route_ms, 0.0);
}

TEST(Localizer, PersistentProbesMatchSuspectsWithLessInsertWork) {
  // Persistent probe infrastructure must change only the *cost* of
  // localization, never its conclusions: probe choices, signatures, and
  // narrowing are identical, but retargeting compactors (a routing-only
  // delta) replaces the per-iteration insert/remove ECO pair.
  Netlist golden = test::make_random_netlist(120, 31);
  Netlist dut_nl = golden;
  const InjectedError err = inject_error(dut_nl, ErrorKind::kWrongPolarity, 2);

  TilingParams tp;
  tp.seed = 4;
  tp.target_overhead = 0.30;
  tp.num_tiles = 8;
  TiledDesign dut_legacy = TilingEngine::build(std::move(dut_nl), tp);
  TiledDesign dut_persistent = dut_legacy.clone();

  const auto patterns =
      random_patterns(golden.primary_inputs().size(), 192, 12);
  const DetectResult det =
      detect_errors(dut_legacy.netlist, golden, patterns);
  ASSERT_TRUE(det.error_detected);

  LocalizerOptions lo;
  lo.seed = 3;
  lo.probes_per_iteration = 4;
  lo.persistent_probes = false;
  const LocalizeResult legacy =
      localize(dut_legacy, golden, det.failing_output, patterns, lo);
  lo.persistent_probes = true;
  const LocalizeResult persistent =
      localize(dut_persistent, golden, det.failing_output, patterns, lo);

  // Same conclusions, iteration for iteration.
  EXPECT_EQ(persistent.suspects, legacy.suspects);
  ASSERT_EQ(persistent.iterations.size(), legacy.iterations.size());
  ASSERT_GE(legacy.iterations.size(), 2u)
      << "config must localize over several iterations for the comparison "
         "to exercise retargeting";
  const auto work = [](const PnrEffort& e) {
    return static_cast<double>(e.instances_placed) +
           static_cast<double>(e.nets_routed) +
           static_cast<double>(e.nodes_expanded);
  };
  double legacy_insert = 0.0, persistent_insert = 0.0;
  std::size_t retargets = 0;
  for (std::size_t i = 0; i < legacy.iterations.size(); ++i) {
    EXPECT_EQ(persistent.iterations[i].probes, legacy.iterations[i].probes);
    EXPECT_EQ(persistent.iterations[i].probe_bad,
              legacy.iterations[i].probe_bad);
    EXPECT_EQ(persistent.iterations[i].candidates_after,
              legacy.iterations[i].candidates_after);
    legacy_insert += work(legacy.iterations[i].insert_effort);
    persistent_insert += work(persistent.iterations[i].insert_effort);
    retargets += persistent.iterations[i].probes_retargeted;
  }
  EXPECT_GT(retargets, 0u);
  // Strictly lower probe-ECO work, even charging the one-time teardown.
  EXPECT_LT(persistent_insert + work(persistent.teardown_effort),
            legacy_insert);

  // Both modes leave a clean, consistent physical design behind.
  dut_legacy.validate();
  dut_persistent.validate();
}

TEST(Corrector, FixesLocalizedError) {
  Netlist golden = test::make_random_netlist(60, 41);
  Netlist dut_nl = golden;
  const InjectedError err = inject_error(dut_nl, ErrorKind::kLutFunction, 6);

  TilingParams tp;
  tp.seed = 5;
  tp.target_overhead = 0.30;
  tp.num_tiles = 4;
  TiledDesign dut = TilingEngine::build(std::move(dut_nl), tp);
  const auto patterns =
      random_patterns(golden.primary_inputs().size(), 192, 3);

  const std::vector<CellId> suspects{err.cell};
  const CorrectionResult r =
      correct_design(dut, golden, suspects, patterns, EcoOptions{});
  EXPECT_TRUE(r.corrected);
  EXPECT_EQ(r.fixed_cell, err.cell);
  EXPECT_FALSE(
      detect_errors(dut.netlist, golden, patterns).error_detected);
  dut.validate();
}

TEST(DebugLoop, FullSessionConvergesOnSmallDesign) {
  const Netlist golden = test::make_random_netlist(70, 53);
  DebugSessionOptions opts;
  opts.error_kind = ErrorKind::kWrongPolarity;
  opts.seed = 9;
  opts.num_patterns = 192;
  opts.tiling.target_overhead = 0.30;
  opts.tiling.num_tiles = 6;
  const DebugSessionReport report = run_debug_session(golden, opts);
  ASSERT_TRUE(report.detection.error_detected);
  EXPECT_TRUE(report.correction.corrected);
  EXPECT_TRUE(report.final_clean);
  EXPECT_GT(report.debug_effort.total_ms(), 0.0);

  // The phase profile is populated: the session took measurable wall time,
  // every phase contributed non-negatively, and the phases sum to the total.
  EXPECT_GT(report.wall_seconds, 0.0);
  double phase_sum = 0.0;
  for (double s : report.phase_seconds) {
    EXPECT_GE(s, 0.0);
    phase_sum += s;
  }
  EXPECT_NEAR(phase_sum, report.wall_seconds, 1e-9);
  EXPECT_GT(
      report.phase_seconds[static_cast<std::size_t>(SessionPhase::kBuild)],
      0.0);
}

TEST(DebugLoop, WarmBaselineMatchesColdBuildByteForByte) {
  // A session handed the golden netlist's tiled implementation as a warm
  // baseline must clone it for LUT-reconfiguration errors — and everything
  // downstream (detection, localization, correction, effort counters) must
  // be indistinguishable from the cold build, because the physical flow
  // never reads truth tables.
  const Netlist golden = test::make_random_netlist(70, 53);
  DebugSessionOptions opts;
  opts.error_kind = ErrorKind::kWrongPolarity;
  opts.seed = 9;
  opts.num_patterns = 192;
  opts.tiling.target_overhead = 0.30;
  opts.tiling.num_tiles = 6;
  const DebugSessionReport cold = run_debug_session(golden, opts);

  opts.warm_baseline = std::make_shared<const TiledDesign>(
      TilingEngine::build(Netlist(golden), opts.tiling));
  const DebugSessionReport warm = run_debug_session(golden, opts);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_FALSE(cold.warm_started);
  EXPECT_EQ(warm.detection.error_detected, cold.detection.error_detected);
  EXPECT_EQ(warm.localization.suspects, cold.localization.suspects);
  EXPECT_EQ(warm.correction.corrected, cold.correction.corrected);
  EXPECT_EQ(warm.final_clean, cold.final_clean);
  EXPECT_EQ(warm.build_effort.instances_placed,
            cold.build_effort.instances_placed);
  EXPECT_EQ(warm.build_effort.nets_routed, cold.build_effort.nets_routed);
  EXPECT_EQ(warm.build_effort.nodes_expanded,
            cold.build_effort.nodes_expanded);
  EXPECT_EQ(warm.debug_effort.instances_placed,
            cold.debug_effort.instances_placed);
  EXPECT_EQ(warm.debug_effort.nets_routed, cold.debug_effort.nets_routed);
  EXPECT_EQ(warm.debug_effort.nodes_expanded,
            cold.debug_effort.nodes_expanded);

  // A connectivity-changing error must refuse the baseline and build cold.
  opts.error_kind = ErrorKind::kWrongConnection;
  const DebugSessionReport conn = run_debug_session(golden, opts);
  EXPECT_FALSE(conn.warm_started);
}

}  // namespace
}  // namespace emutile
