// End-to-end integration tests: generated paper designs through the full
// flow (synthesize -> tile -> debug iterate -> correct), BLIF round trips of
// real generated designs through the physical flow, and cross-module
// interactions the unit suites cannot see.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/tiling_engine.hpp"
#include "debug/debug_loop.hpp"
#include "designs/catalog.hpp"
#include "eco/eco_strategies.hpp"
#include "hier/hierarchy.hpp"
#include "netlist/blif_parser.hpp"
#include "netlist/blif_writer.hpp"
#include "test_helpers.hpp"
#include "timing/sta.hpp"

namespace emutile {
namespace {

TEST(Integration, SmallPaperDesignFullFlow) {
  // 9sym end to end: generate, tile, time, probe, validate.
  TilingParams tp;
  tp.seed = 2;
  tp.num_tiles = 8;
  TiledDesign d = TilingEngine::build(build_paper_design("9sym", 2), tp);
  d.validate();

  const TimingReport timing = analyze_timing(
      d.netlist, d.packed, *d.placement, *d.routing, d.nets);
  EXPECT_GT(timing.critical_path_ns, 0.0);

  // Insert a probe as an ECO and re-validate.
  CellId anchor;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) anchor = id;
  EcoChange change;
  change.added_cells = {d.netlist.add_lut(
      "probe", TruthTable::buffer(), {d.netlist.cell_output(anchor)})};
  change.anchor_cells = {anchor};
  const EcoOutcome out = TilingEngine::apply_change(d, change, EcoOptions{});
  EXPECT_TRUE(out.success);
  EXPECT_LE(out.affected.size(),
            static_cast<std::size_t>(d.tiles->num_tiles()));
  d.validate();
}

TEST(Integration, BlifExportOfGeneratedDesignRebuilds) {
  // styr -> BLIF -> parse -> implement: the exchange format carries a real
  // design through the whole physical flow.
  const Netlist original = build_paper_design("styr", 4);
  Netlist reparsed = parse_blif_string(to_blif_string(original));
  const auto patterns =
      random_patterns(original.primary_inputs().size(), 64, 9);
  EXPECT_EQ(test::run_patterns(original, patterns),
            test::run_patterns(reparsed, patterns));

  FlowParams fp;
  fp.seed = 4;
  fp.slack = 0.2;
  TiledDesign d = build_flat(std::move(reparsed), fp);
  d.validate();
}

TEST(Integration, DebugSessionAcrossErrorKinds) {
  const Netlist golden = test::make_random_netlist(80, 71);
  for (ErrorKind kind : {ErrorKind::kWrongPolarity, ErrorKind::kLutFunction}) {
    DebugSessionOptions opts;
    opts.error_kind = kind;
    opts.seed = 21;
    opts.num_patterns = 256;
    opts.tiling.target_overhead = 0.3;
    opts.tiling.num_tiles = 6;
    const DebugSessionReport report = run_debug_session(golden, opts);
    if (!report.detection.error_detected) continue;  // not excited: fine
    EXPECT_TRUE(report.localization.narrowed ||
                report.localization.suspects.size() <= 4)
        << to_string(kind);
    if (report.correction.corrected) EXPECT_TRUE(report.final_clean);
  }
}

TEST(Integration, QuickEcoWithRealBlocksTouchesOnlyBlockTiles) {
  // Two-block hierarchy: Quick_ECO moves only the changed block's instances
  // (block granularity — coarser than tiles, finer than the whole chip).
  TilingParams tp;
  tp.seed = 6;
  tp.num_tiles = 8;
  TiledDesign d = TilingEngine::build(test::make_random_netlist(100, 6), tp);

  DesignHierarchy hier("two_block");
  const HierId blk_a = hier.add_block("a");
  const HierId blk_b = hier.add_block("b");
  int i = 0;
  for (CellId id : d.netlist.live_cells())
    hier.bind_cell(id, (i++ % 2) ? blk_a : blk_b);

  // Snapshot placement, change one cell of block A.
  std::vector<SiteIndex> before(d.packed.inst_bound(), kInvalidSite);
  for (InstId id : d.packed.live_insts())
    before[id.value()] = d.placement->site_of(id);

  CellId victim;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut &&
        hier.block_of(id) == blk_a)
      victim = id;
  d.netlist.set_lut_function(victim,
                             d.netlist.cell(victim).function.complement());
  EcoChange change;
  change.modified_cells = {victim};
  const EcoStrategyResult r = quick_eco(d, hier, change, 11);
  ASSERT_TRUE(r.success);
  d.validate();

  // Instances holding only block-B cells must not have moved... except
  // those sharing a CLB with block-A cells. Verify at least one pure-B
  // instance stayed put and that the changed cell's instance is legal.
  std::size_t pure_b_stayed = 0;
  for (InstId id : d.packed.live_insts()) {
    const Instance& inst = d.packed.inst(id);
    if (!inst.is_clb()) continue;
    bool has_a = false, has_b = false;
    for (CellId c : {inst.lut_f, inst.lut_g, inst.ff_f, inst.ff_g}) {
      if (!c.valid()) continue;
      (hier.block_of(c) == blk_a ? has_a : has_b) = true;
    }
    if (has_b && !has_a &&
        d.placement->site_of(id) == before[id.value()])
      ++pure_b_stayed;
  }
  EXPECT_GT(pure_b_stayed, 0u);
}

TEST(Integration, SequentialDesignEmulatesAfterTiling) {
  // The tiled physical design's netlist still emulates identically to the
  // pre-implementation netlist (implementation is function-neutral).
  const Netlist golden = build_paper_design("sand", 8);
  Netlist copy = golden;
  TilingParams tp;
  tp.seed = 8;
  tp.num_tiles = 10;
  TiledDesign d = TilingEngine::build(std::move(copy), tp);
  const auto patterns =
      random_patterns(golden.primary_inputs().size(), 96, 13);
  EXPECT_EQ(test::run_patterns(golden, patterns),
            test::run_patterns(d.netlist, patterns));
}

TEST(Integration, RepeatedEcosAccumulateWithoutCorruption) {
  // A long debugging session: many small ECOs back to back; the design must
  // stay valid and functional throughout (state leaks across ECOs are the
  // classic failure mode here).
  TilingParams tp;
  tp.seed = 12;
  tp.target_overhead = 0.30;
  tp.num_tiles = 8;
  TiledDesign d = TilingEngine::build(test::make_random_netlist(80, 12), tp);
  const auto patterns =
      random_patterns(d.netlist.primary_inputs().size(), 32, 5);
  auto expected = test::run_patterns(d.netlist, patterns);

  Rng rng(99);
  std::vector<CellId> luts;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) luts.push_back(id);

  for (int round = 0; round < 6; ++round) {
    const CellId anchor = luts[rng.next_below(luts.size())];
    EcoChange change;
    if (round % 2 == 0) {
      // Behaviour-neutral addition.
      const CellId probe = d.netlist.add_lut(
          "it" + std::to_string(round) + "_p", TruthTable::buffer(),
          {d.netlist.cell_output(anchor)});
      change.added_cells = {probe};
      change.anchor_cells = {anchor};
    } else {
      // Behaviour-changing modification; update the expectation.
      d.netlist.set_lut_function(
          anchor, d.netlist.cell(anchor).function.complement());
      change.modified_cells = {anchor};
    }
    EcoOptions opts;
    opts.seed = 100 + static_cast<std::uint64_t>(round);
    const EcoOutcome out = TilingEngine::apply_change(d, change, opts);
    ASSERT_TRUE(out.success) << "round " << round;
    d.validate();
    if (round % 2 == 1) expected = test::run_patterns(d.netlist, patterns);
    EXPECT_EQ(test::run_patterns(d.netlist, patterns), expected)
        << "round " << round;
  }
}

}  // namespace
}  // namespace emutile
