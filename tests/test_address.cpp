// Address tests: the ServiceAddress URI grammar (parse/to_string
// round-trips, the bare-string legacy forms, malformed-input rejection) and
// the dial/listen plumbing on real sockets — Unix and TCP loopback,
// ephemeral-port discovery through bound_service_address.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "service/address.hpp"
#include "util/check.hpp"

namespace emutile {
namespace {

namespace fs = std::filesystem;

TEST(ServiceAddressParse, UriFormsRoundTripThroughToString) {
  const ServiceAddress unix_addr =
      parse_service_address("unix:/run/emutile/serviced.sock");
  EXPECT_EQ(unix_addr.kind, AddressKind::kUnix);
  EXPECT_EQ(unix_addr.path, "/run/emutile/serviced.sock");
  EXPECT_EQ(unix_addr.to_string(), "unix:/run/emutile/serviced.sock");

  const ServiceAddress tcp_addr = parse_service_address("tcp:build-07:7733");
  EXPECT_EQ(tcp_addr.kind, AddressKind::kTcp);
  EXPECT_EQ(tcp_addr.host, "build-07");
  EXPECT_EQ(tcp_addr.port, 7733);
  EXPECT_EQ(tcp_addr.to_string(), "tcp:build-07:7733");

  const ServiceAddress spool_addr = parse_service_address("spool:/var/em-b");
  EXPECT_EQ(spool_addr.kind, AddressKind::kSpool);
  EXPECT_EQ(spool_addr.path, "/var/em-b");
  EXPECT_EQ(spool_addr.to_string(), "spool:/var/em-b");

  // parse(to_string()) is the identity on every kind.
  for (const ServiceAddress& addr : {unix_addr, tcp_addr, spool_addr})
    EXPECT_EQ(parse_service_address(addr.to_string(),
                                    AddressKind::kSpool),  // bare_kind unused
              addr);
}

TEST(ServiceAddressParse, BareStringsKeepTheirLegacyMeaning) {
  // ServiceClient / --socket context: bare means Unix socket.
  const ServiceAddress sock = parse_service_address("/tmp/d.sock");
  EXPECT_EQ(sock.kind, AddressKind::kUnix);
  EXPECT_EQ(sock.path, "/tmp/d.sock");
  // Fleet-config `spool` kind context: bare means root dir.
  const ServiceAddress root =
      parse_service_address("/var/emutile-b", AddressKind::kSpool);
  EXPECT_EQ(root.kind, AddressKind::kSpool);
  EXPECT_EQ(root.path, "/var/emutile-b");
  // Relative paths stay addressable.
  EXPECT_EQ(parse_service_address("./serviced.sock").kind, AddressKind::kUnix);
}

TEST(ServiceAddressParse, MalformedInputsThrow) {
  const auto reject = [](const std::string& text) {
    EXPECT_THROW(static_cast<void>(parse_service_address(text)), CheckError)
        << text;
  };
  reject("");                  // empty
  reject("unix:");             // empty path
  reject("spool:");            // empty root
  reject("tcp:");              // no host:port
  reject("tcp:lonelyhost");    // no port
  reject("tcp::7733");         // empty host
  reject("tcp:host:");         // empty port
  reject("tcp:host:banana");   // non-numeric port
  reject("tcp:host:65536");    // port out of range
  reject("http:example.com");  // unknown scheme
  // A bare string containing ':' that is not a path is an unknown scheme,
  // not silently a Unix socket named "http".
  reject("host:7733");
  // kTcp never had a bare form — asking for one is a caller bug.
  EXPECT_THROW(
      static_cast<void>(parse_service_address("h", AddressKind::kTcp)),
      CheckError);
}

TEST(ServiceAddressParse, Ipv6StyleHostsSplitOnTheLastColon) {
  const ServiceAddress addr = parse_service_address("tcp:::1:9000");
  EXPECT_EQ(addr.host, "::1");
  EXPECT_EQ(addr.port, 9000);
}

/// One byte each way over a freshly dialed connection proves listen + dial
/// actually wired two endpoints together.
void expect_echo(int listen_fd, const ServiceAddress& dial_to) {
  std::thread server([listen_fd] {
    // The listener may be non-blocking (reactor use): poll-accept briefly.
    int conn = -1;
    for (int i = 0; i < 2000 && conn < 0; ++i) {
      conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(conn, 0);
    std::string request;
    EXPECT_TRUE(fd_read_all(conn, request, /*timeout_ms=*/5'000));
    EXPECT_EQ(request, "ping\n");
    EXPECT_TRUE(fd_write_all(conn, "pong\n"));
    ::close(conn);
  });
  const int fd = dial_service_address(dial_to);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(fd_write_all(fd, "ping\n"));
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  EXPECT_TRUE(fd_read_all(fd, reply, /*timeout_ms=*/5'000));
  EXPECT_EQ(reply, "pong\n");
  ::close(fd);
  server.join();
}

TEST(ServiceAddressSockets, UnixListenAndDialExchangeBytes) {
  const fs::path sock =
      fs::path(::testing::TempDir()) / "emutile-addr-unix.sock";
  fs::remove(sock);
  const ServiceAddress addr = ServiceAddress::unix_socket(sock);
  const int listen_fd =
      listen_service_address(addr, /*backlog=*/4, /*nonblocking=*/true);
  ASSERT_GE(listen_fd, 0);
  EXPECT_EQ(bound_service_address(addr, listen_fd), addr);
  expect_echo(listen_fd, addr);
  ::close(listen_fd);
  fs::remove(sock);
}

TEST(ServiceAddressSockets, TcpEphemeralPortIsDiscoverableAndDialable) {
  const ServiceAddress requested = ServiceAddress::tcp("127.0.0.1", 0);
  const int listen_fd =
      listen_service_address(requested, /*backlog=*/4, /*nonblocking=*/true);
  ASSERT_GE(listen_fd, 0);
  const ServiceAddress bound = bound_service_address(requested, listen_fd);
  EXPECT_EQ(bound.kind, AddressKind::kTcp);
  EXPECT_EQ(bound.host, "127.0.0.1");
  EXPECT_NE(bound.port, 0) << "port 0 must resolve to the real bound port";
  expect_echo(listen_fd, bound);
  ::close(listen_fd);
}

TEST(ServiceAddressSockets, StaleUnixSocketFileIsReplacedOnListen) {
  const fs::path sock =
      fs::path(::testing::TempDir()) / "emutile-addr-stale.sock";
  const ServiceAddress addr = ServiceAddress::unix_socket(sock);
  const int first =
      listen_service_address(addr, /*backlog=*/4, /*nonblocking=*/true);
  ::close(first);  // fd gone, socket file left behind — a crashed daemon
  ASSERT_TRUE(fs::exists(sock));
  const int second =
      listen_service_address(addr, /*backlog=*/4, /*nonblocking=*/true);
  ASSERT_GE(second, 0) << "a stale socket file must not block a restart";
  expect_echo(second, addr);
  ::close(second);
  fs::remove(sock);
}

TEST(ServiceAddressSockets, DialFailuresThrowWithTheAddressInTheMessage) {
  try {
    static_cast<void>(dial_service_address(
        ServiceAddress::unix_socket("/nonexistent/emutile.sock")));
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unix:/nonexistent/emutile.sock"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      static_cast<void>(dial_service_address(ServiceAddress::spool("/tmp"))),
      CheckError);
}

}  // namespace
}  // namespace emutile
