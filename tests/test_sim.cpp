// Simulator and pattern-generation tests.

#include <gtest/gtest.h>

#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

TEST(Simulator, Adder4Exhaustive) {
  const Netlist nl = test::make_adder4();
  Simulator sim(nl);
  sim.reset();
  for (const Pattern& p : exhaustive_patterns(9)) {
    unsigned a = 0, b = 0;
    for (int i = 0; i < 4; ++i) {
      a |= static_cast<unsigned>(p[static_cast<std::size_t>(i)]) << i;
      b |= static_cast<unsigned>(p[static_cast<std::size_t>(4 + i)]) << i;
    }
    const unsigned cin = p[8];
    const auto out = sim.step(p);
    unsigned sum = 0;
    for (int i = 0; i < 4; ++i)
      sum |= static_cast<unsigned>(out[static_cast<std::size_t>(i)]) << i;
    sum |= static_cast<unsigned>(out[4]) << 4;
    EXPECT_EQ(sum, a + b + cin);
  }
}

TEST(Simulator, SequentialCounterCounts) {
  const Netlist nl = test::make_seq4();
  Simulator sim(nl);
  sim.reset();
  // en=1 for 5 cycles: outputs show 0,1,2,3,4 (Moore: state visible after).
  std::vector<unsigned> seen;
  for (int c = 0; c < 5; ++c) {
    const auto out = sim.step({1});
    unsigned v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<unsigned>(out[static_cast<std::size_t>(i)]) << i;
    seen.push_back(v);
  }
  EXPECT_EQ(seen, (std::vector<unsigned>{0, 1, 2, 3, 4}));
  // en=0 holds.
  const auto hold = sim.step({0});
  unsigned v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<unsigned>(hold[static_cast<std::size_t>(i)]) << i;
  EXPECT_EQ(v, 5u);
  EXPECT_EQ(sim.step({0})[0], hold[0]);
}

TEST(Simulator, ResetClearsState) {
  const Netlist nl = test::make_seq4();
  Simulator sim(nl);
  sim.reset();
  for (int c = 0; c < 3; ++c) sim.step({1});
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  const auto out = sim.step({0});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 0);
}

TEST(Simulator, NetValueReadback) {
  const Netlist nl = test::make_adder4();
  Simulator sim(nl);
  sim.reset();
  Pattern p(9, 1);  // all ones: a=15, b=15, cin=1 -> sum=31
  sim.step(p);
  const NetId cout_net =
      nl.cell(nl.primary_outputs().back()).inputs[0];
  EXPECT_TRUE(sim.net_value(cout_net));
}

TEST(Simulator, FfStateReadback) {
  const Netlist nl = test::make_seq4();
  Simulator sim(nl);
  sim.reset();
  sim.step({1});  // state becomes 1
  bool any = false;
  for (CellId id : nl.live_cells())
    if (nl.cell(id).kind == CellKind::kDff && sim.ff_state(id)) any = true;
  EXPECT_TRUE(any);
}

TEST(Patterns, RandomAreDeterministic) {
  const auto a = random_patterns(8, 16, 42);
  const auto b = random_patterns(8, 16, 42);
  const auto c = random_patterns(8, 16, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a[0].size(), 8u);
}

TEST(Patterns, ExhaustiveCoversAll) {
  const auto p = exhaustive_patterns(4);
  EXPECT_EQ(p.size(), 16u);
  std::set<unsigned> values;
  for (const Pattern& v : p) {
    unsigned x = 0;
    for (std::size_t i = 0; i < v.size(); ++i)
      x |= static_cast<unsigned>(v[i]) << i;
    values.insert(x);
  }
  EXPECT_EQ(values.size(), 16u);
}

TEST(Patterns, MarchingShapes) {
  const auto p = marching_patterns(5);
  EXPECT_EQ(p.size(), 12u);  // 0, 5 walking ones, 1s, 5 walking zeros
}

TEST(Signature, DiffersOnDifferentStreams) {
  SignatureAccumulator a, b;
  for (int i = 0; i < 64; ++i) {
    a.add(i % 3 == 0);
    b.add(i % 3 == 1);
  }
  EXPECT_NE(a.value(), b.value());
}

TEST(Signature, SameStreamSameSignature) {
  SignatureAccumulator a, b;
  for (int i = 0; i < 64; ++i) {
    a.add(i & 1);
    b.add(i & 1);
  }
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace emutile
