// Placement state and annealer tests.

#include <gtest/gtest.h>

#include "place/placer.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

struct PlaceFixture {
  Netlist nl;
  PackedDesign packed;
  Device device;
  std::vector<PhysNet> nets;

  explicit PlaceFixture(int luts = 60, std::uint64_t seed = 5,
                        double extra = 0.3)
      : nl(test::make_random_netlist(luts, seed)),
        packed(pack(nl)),
        device(Device(Device::size_for(
            static_cast<int>(packed.num_clbs() * (1.0 + extra)) + 1,
            static_cast<int>(packed.num_iobs() + 4), 8))),
        nets(packed.physical_nets(nl)) {}
};

TEST(Placement, SetMoveSwapClear) {
  PlaceFixture f(10);
  Placement p(f.device, f.packed);
  const auto insts = f.packed.live_insts();
  InstId a, b;
  for (InstId id : insts)
    if (f.packed.inst(id).is_clb()) {
      if (!a.valid())
        a = id;
      else if (!b.valid())
        b = id;
    }
  ASSERT_TRUE(a.valid() && b.valid());
  p.set(a, f.device.clb_site(0, 0));
  p.set(b, f.device.clb_site(1, 0));
  EXPECT_EQ(p.inst_at(f.device.clb_site(0, 0)), a);
  p.swap(a, b);
  EXPECT_EQ(p.inst_at(f.device.clb_site(0, 0)), b);
  p.move(a, f.device.clb_site(2, 2));
  EXPECT_EQ(p.site_of(a), f.device.clb_site(2, 2));
  p.clear(a);
  EXPECT_FALSE(p.is_placed(a));
  EXPECT_THROW(p.set(b, f.device.clb_site(2, 1)), CheckError);  // b placed
}

TEST(Placement, RejectsWrongSiteClass) {
  PlaceFixture f(10);
  Placement p(f.device, f.packed);
  InstId clb, iob;
  for (InstId id : f.packed.live_insts()) {
    if (f.packed.inst(id).is_clb() && !clb.valid()) clb = id;
    if (!f.packed.inst(id).is_clb() && !iob.valid()) iob = id;
  }
  EXPECT_THROW(p.set(clb, f.device.iob_site(0)), CheckError);
  EXPECT_THROW(p.set(iob, f.device.clb_site(0, 0)), CheckError);
}

TEST(Placer, ProducesLegalPlacement) {
  PlaceFixture f(60);
  Placement p(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);
  PlacerParams params;
  params.seed = 3;
  placer.place(p, params);
  p.validate(f.packed);
}

TEST(Placer, ImprovesWirelength) {
  PlaceFixture f(80);
  Placement p(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);
  PlacerParams params;
  params.seed = 3;
  const PlaceResult r = placer.place(p, params);
  EXPECT_LT(r.final_cost, r.initial_cost);
  EXPECT_GT(r.moves_accepted, 0u);
  EXPECT_NEAR(placer.wirelength_cost(p), r.final_cost, 1e-6 * r.final_cost + 1e-9);
}

TEST(Placer, DeterministicForSeed) {
  PlaceFixture f(40);
  Placement p1(f.device, f.packed), p2(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);
  PlacerParams params;
  params.seed = 11;
  placer.place(p1, params);
  placer.place(p2, params);
  for (InstId id : f.packed.live_insts())
    EXPECT_EQ(p1.site_of(id), p2.site_of(id));
}

TEST(Placer, HonorsPinnedInstances) {
  PlaceFixture f(40);
  Placement p(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);

  // Pre-place one CLB and pin it.
  InstId pinned;
  for (InstId id : f.packed.live_insts())
    if (f.packed.inst(id).is_clb()) {
      pinned = id;
      break;
    }
  const SiteIndex home = f.device.clb_site(0, 0);
  p.set(pinned, home);
  PlaceConstraints cons(f.packed.inst_bound());
  cons.set_movable(pinned, false);
  PlacerParams params;
  params.seed = 2;
  placer.place(p, params, cons);
  EXPECT_EQ(p.site_of(pinned), home);
  p.validate(f.packed);
}

TEST(Placer, HonorsRegionConstraint) {
  PlaceFixture f(30);
  Placement p(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);
  PlaceConstraints cons(f.packed.inst_bound());
  const Rect region{0, 0, 3, 3};
  std::vector<InstId> constrained;
  int count = 0;
  for (InstId id : f.packed.live_insts())
    if (f.packed.inst(id).is_clb() && count++ < 6) {
      cons.set_region(id, region);
      constrained.push_back(id);
    }
  PlacerParams params;
  params.seed = 4;
  placer.place(p, params, cons);
  for (InstId id : constrained) {
    auto [x, y] = f.device.clb_xy(p.site_of(id));
    EXPECT_TRUE(region.contains(x, y));
  }
  p.validate(f.packed);
}

TEST(Placer, HonorsMultiRectRegion) {
  PlaceFixture f(30);
  Placement p(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);
  PlaceConstraints cons(f.packed.inst_bound());
  // Both rects must fit the small test device (~5x5).
  const std::vector<Rect> rects{{0, 0, 2, 2}, {3, 3, 5, 5}};
  const int region = cons.add_region(rects);
  std::vector<InstId> constrained;
  int count = 0;
  for (InstId id : f.packed.live_insts())
    if (f.packed.inst(id).is_clb() && count++ < 5) {
      cons.assign_region(id, region);
      constrained.push_back(id);
    }
  PlacerParams params;
  params.seed = 4;
  placer.place(p, params, cons);
  for (InstId id : constrained) {
    auto [x, y] = f.device.clb_xy(p.site_of(id));
    EXPECT_TRUE(rects[0].contains(x, y) || rects[1].contains(x, y));
  }
}

TEST(Placer, RegionCapacityOverflowThrows) {
  PlaceFixture f(30);
  Placement p(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);
  PlaceConstraints cons(f.packed.inst_bound());
  const Rect tiny{0, 0, 1, 1};  // one site
  int count = 0;
  for (InstId id : f.packed.live_insts())
    if (f.packed.inst(id).is_clb() && count++ < 3) cons.set_region(id, tiny);
  PlacerParams params;
  EXPECT_THROW(placer.place(p, params, cons), CheckError);
}

TEST(Placer, IncrementalKeepsLegalityAndImproves) {
  PlaceFixture f(60);
  Placement p(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);
  PlacerParams full;
  full.seed = 9;
  placer.place(p, full);
  const double cost_after_full = placer.wirelength_cost(p);

  // Perturb: swap a few instances, then refine incrementally.
  std::vector<InstId> clbs;
  for (InstId id : f.packed.live_insts())
    if (f.packed.inst(id).is_clb()) clbs.push_back(id);
  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(clbs.size(), 8); i += 2)
    p.swap(clbs[i], clbs[i + 1]);
  const double perturbed = placer.wirelength_cost(p);

  PlacerParams inc;
  inc.seed = 10;
  inc.incremental = true;
  placer.place(p, inc);
  p.validate(f.packed);
  EXPECT_LE(placer.wirelength_cost(p), perturbed + 1e-9);
  (void)cost_after_full;
}

TEST(Placer, SeedsUnplacedNearNeighborsInIncrementalMode) {
  PlaceFixture f(40);
  Placement p(f.device, f.packed);
  Placer placer(f.device, f.packed, f.nets);
  PlacerParams full;
  full.seed = 1;
  placer.place(p, full);

  // Unplace one instance with neighbors, reseed incrementally with zero
  // effort: it should land near its connections, not across the die.
  InstId victim;
  for (const PhysNet& n : f.nets)
    if (!n.sink_insts.empty() && f.packed.inst(n.src_inst).is_clb()) {
      victim = n.src_inst;
      break;
    }
  ASSERT_TRUE(victim.valid());
  p.clear(victim);

  PlacerParams inc;
  inc.incremental = true;
  inc.effort = 0.01;
  placer.place(p, inc);
  EXPECT_TRUE(p.is_placed(victim));
  p.validate(f.packed);
}

}  // namespace
}  // namespace emutile
