#pragma once
/// Shared fixtures: small hand-built netlists and random-netlist factories
/// used across the test suite, plus the field-by-field campaign-report
/// differ the durability and orchestrator suites use to explain
/// byte-inequality failures.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "designs/blocks.hpp"
#include "netlist/netlist.hpp"
#include "netlist/netlist_ops.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "synth/lut_mapper.hpp"
#include "util/rng.hpp"

namespace emutile::test {

/// 4-bit combinational adder: 9 PIs (a0..3, b0..3, cin), 5 POs.
inline Netlist make_adder4() {
  Netlist nl("adder4");
  const Bus a = b_inputs(nl, "a", 4);
  const Bus b = b_inputs(nl, "b", 4);
  const NetId cin = nl.cell_output(nl.add_input("cin"));
  const AddResult r = b_adder(nl, a, b, cin, "add");
  b_outputs(nl, "s", r.sum);
  nl.add_output("cout", r.carry_out);
  nl.validate();
  return nl;
}

/// Small sequential circuit: 4-bit counter-ish datapath with an enable.
inline Netlist make_seq4() {
  Netlist nl("seq4");
  const NetId en = nl.cell_output(nl.add_input("en"));
  const CellId one = nl.add_const("one", true);
  Bus q;
  std::vector<CellId> ffs;
  const CellId zero = nl.add_const("zero", false);
  for (int i = 0; i < 4; ++i) {
    const CellId ff = nl.add_dff("q" + std::to_string(i), nl.cell_output(zero));
    ffs.push_back(ff);
    q.push_back(nl.cell_output(ff));
  }
  Bus inc(4, nl.cell_output(zero));
  inc[0] = nl.cell_output(one);
  const AddResult r = b_adder(nl, q, inc, nl.cell_output(zero), "inc");
  const Bus next = b_mux_bus(nl, en, q, r.sum, "nx");
  for (int i = 0; i < 4; ++i)
    nl.reconnect_input(ffs[static_cast<std::size_t>(i)], 0,
                       next[static_cast<std::size_t>(i)]);
  b_outputs(nl, "o", q);
  nl.validate();
  return nl;
}

/// Random mapped netlist with `num_luts` 4-LUTs (plus a share of DFFs),
/// every cone folded into a checksum output. Already 4-LUT mapped.
inline Netlist make_random_netlist(int num_luts, std::uint64_t seed,
                                   double ff_fraction = 0.1, int num_pis = 8) {
  Netlist nl("rand" + std::to_string(seed));
  Rng rng(seed);
  std::vector<NetId> pool;
  for (int i = 0; i < num_pis; ++i)
    pool.push_back(nl.cell_output(nl.add_input("pi" + std::to_string(i))));
  std::vector<NetId> outs;
  for (int i = 0; i < num_luts; ++i) {
    std::vector<NetId> ins;
    for (int k = 0; k < 4; ++k) {
      // Mostly-local connectivity (like real circuits); purely uniform
      // random graphs have Rent exponent ~1 and are barely routable.
      if (rng.next_bool(0.8) && pool.size() > 24)
        ins.push_back(pool[pool.size() - 1 - rng.next_below(24)]);
      else
        ins.push_back(pool[rng.next_below(pool.size())]);
    }
    TruthTable tt(4);
    do {
      for (unsigned m = 0; m < 16; ++m) tt.set_bit(m, rng.next_bool(0.5));
    } while (tt.is_constant(false) || tt.is_constant(true));
    NetId out = nl.cell_output(nl.add_lut("l" + std::to_string(i), tt, ins));
    if (rng.next_bool(ff_fraction)) {
      out = nl.cell_output(nl.add_dff("f" + std::to_string(i), out));
    }
    pool.push_back(out);
    outs.push_back(out);
  }
  // Fold everything into one checksum plus a few direct outputs.
  for (int o = 0; o < 4 && o < static_cast<int>(outs.size()); ++o)
    nl.add_output("po" + std::to_string(o),
                  outs[outs.size() - 1 - static_cast<std::size_t>(o)]);
  nl.add_output("checksum", b_xor_tree(nl, outs, "ck"));
  nl.validate();
  return nl;
}

/// Field-by-field differential cross-check of two campaign-report CSVs
/// (differential validation in the Guo et al. style): returns "" when the
/// reports agree, otherwise one line per differing cell naming the scenario
/// row and the column header — a byte-inequality assertion tells you *that*
/// a resumed run diverged from a fresh one, this dump tells you *where*.
inline std::string diff_campaign_reports_csv(const std::string& expected,
                                             const std::string& actual) {
  const auto split = [](const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::istringstream in(text);
    for (std::string part; std::getline(in, part, sep);)
      parts.push_back(part);
    return parts;
  };
  const std::vector<std::string> a_rows = split(expected, '\n');
  const std::vector<std::string> b_rows = split(actual, '\n');
  const std::vector<std::string> header =
      a_rows.empty() ? std::vector<std::string>() : split(a_rows[0], ',');

  std::ostringstream diff;
  if (a_rows.size() != b_rows.size())
    diff << "row count: expected " << a_rows.size() << " rows, got "
         << b_rows.size() << "\n";
  const std::size_t rows = std::min(a_rows.size(), b_rows.size());
  for (std::size_t r = 0; r < rows; ++r) {
    if (a_rows[r] == b_rows[r]) continue;
    const std::vector<std::string> a = split(a_rows[r], ',');
    const std::vector<std::string> b = split(b_rows[r], ',');
    // Scenario rows lead with design,error_kind,tiles — enough to name them.
    std::string label = "row " + std::to_string(r);
    if (r > 0 && a.size() >= 3)
      label += " (" + a[0] + "/" + a[1] + "/" + a[2] + ")";
    if (a.size() != b.size()) {
      diff << label << ": expected " << a.size() << " cells, got " << b.size()
           << "\n";
      continue;
    }
    for (std::size_t c = 0; c < a.size(); ++c)
      if (a[c] != b[c])
        diff << label << " column "
             << (c < header.size() ? header[c] : std::to_string(c))
             << ": expected '" << a[c] << "' got '" << b[c] << "'\n";
  }
  return diff.str();
}

/// Response capture: run `patterns` through a netlist, returning all PO
/// vectors (resets first).
inline std::vector<std::vector<std::uint8_t>> run_patterns(
    const Netlist& nl, const std::vector<Pattern>& patterns) {
  Simulator sim(nl);
  sim.reset();
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(patterns.size());
  for (const Pattern& p : patterns) out.push_back(sim.step(p));
  return out;
}

}  // namespace emutile::test
