// Static timing analysis tests.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "timing/sta.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

TiledDesign build(int luts, std::uint64_t seed) {
  FlowParams fp;
  fp.seed = seed;
  fp.slack = 0.25;
  return build_flat(test::make_random_netlist(luts, seed), fp);
}

TEST(Sta, CriticalPathPositiveAndBounded) {
  TiledDesign d = build(60, 3);
  const TimingReport r = analyze_timing(d.netlist, d.packed, *d.placement,
                                        *d.routing, d.nets);
  EXPECT_GT(r.critical_path_ns, 0.0);
  EXPECT_GT(r.endpoints, 0u);
  EXPECT_FALSE(r.critical_endpoint.empty());
  // Sanity ceiling: depth * (lut + generous wire) on a small die.
  EXPECT_LT(r.critical_path_ns, 1000.0);
}

TEST(Sta, DeeperLogicHasLongerPath) {
  // A chain of N LUTs must time longer than a single LUT.
  auto chain_design = [](int length) {
    Netlist nl("chain" + std::to_string(length));
    NetId cur = nl.cell_output(nl.add_input("a"));
    for (int i = 0; i < length; ++i)
      cur = nl.cell_output(
          nl.add_lut("g" + std::to_string(i), TruthTable::inverter(), {cur}));
    nl.add_output("y", cur);
    FlowParams fp;
    fp.seed = 2;
    fp.slack = 0.5;
    return build_flat(std::move(nl), fp);
  };
  TiledDesign shallow = chain_design(2);
  TiledDesign deep = chain_design(12);
  const double t_shallow =
      analyze_timing(shallow.netlist, shallow.packed, *shallow.placement,
                     *shallow.routing, shallow.nets)
          .critical_path_ns;
  const double t_deep =
      analyze_timing(deep.netlist, deep.packed, *deep.placement,
                     *deep.routing, deep.nets)
          .critical_path_ns;
  EXPECT_GT(t_deep, t_shallow + 10.0);  // >= 10 extra LUT delays
}

TEST(Sta, RoutedDelayMatchesPathLength) {
  TiledDesign d = build(40, 7);
  for (const PhysNet& n : d.nets) {
    for (InstId s : n.sink_insts) {
      const double delay = routed_sink_delay_ns(
          *d.routing, *d.rr, n.net, d.placement->site_of(s));
      EXPECT_GT(delay, 0.0);
      const auto path = d.routing->path_to(
          n.net, d.rr->sink(d.placement->site_of(s)));
      double manual = 0.0;
      for (RrNodeId x : path)
        manual += RrGraph::intrinsic_delay_ns(d.rr->node(x).type);
      EXPECT_DOUBLE_EQ(delay, manual);
    }
    break;  // one net is enough for the identity check
  }
}

TEST(Sta, SequentialEndpointsIncludeSetup) {
  Netlist nl("ff");
  const NetId a = nl.cell_output(nl.add_input("a"));
  const NetId g = nl.cell_output(nl.add_lut("g", TruthTable::buffer(), {a}));
  const CellId ff = nl.add_dff("ff", g);
  nl.add_output("q", nl.cell_output(ff));
  FlowParams fp;
  fp.slack = 0.5;
  TiledDesign d = build_flat(std::move(nl), fp);
  TimingParams tp;
  const TimingReport r = analyze_timing(d.netlist, d.packed, *d.placement,
                                        *d.routing, d.nets, tp);
  // Path >= iob + lut + setup at minimum.
  EXPECT_GE(r.critical_path_ns, tp.iob_delay + tp.lut_delay);
}

TEST(Sta, ScalesWithWireDelayParameters) {
  TiledDesign d = build(50, 9);
  TimingParams slow;
  slow.lut_delay = 10.0f;
  const double fast_ns = analyze_timing(d.netlist, d.packed, *d.placement,
                                        *d.routing, d.nets)
                             .critical_path_ns;
  const double slow_ns = analyze_timing(d.netlist, d.packed, *d.placement,
                                        *d.routing, d.nets, slow)
                             .critical_path_ns;
  EXPECT_GT(slow_ns, fast_ns);
}

}  // namespace
}  // namespace emutile
