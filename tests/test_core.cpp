// Tiling engine tests: grid geometry, region masks, slack-aware build,
// affected-tile expansion, and the key confinement property — an ECO must
// leave everything outside the affected tiles untouched.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "core/flow.hpp"
#include "core/region_mask.hpp"
#include "core/tiling_engine.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

TEST(TileGrid, PartitionCoversGridExactly) {
  const TileGrid g(10, 8, 4, 3);
  std::vector<int> hits(static_cast<std::size_t>(g.num_tiles()), 0);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 10; ++x) {
      const TileId t = g.tile_at(x, y);
      EXPECT_TRUE(g.rect(t).contains(x, y));
      ++hits[t.value()];
    }
  int total = 0;
  for (int t = 0; t < g.num_tiles(); ++t) {
    EXPECT_EQ(hits[static_cast<std::size_t>(t)],
              g.capacity(TileId{static_cast<std::uint32_t>(t)}));
    total += hits[static_cast<std::size_t>(t)];
  }
  EXPECT_EQ(total, 80);
}

TEST(TileGrid, MakeApproximatesRequestedCount) {
  for (int n : {1, 4, 10, 20, 40}) {
    const TileGrid g = TileGrid::make(20, 20, n);
    EXPECT_GE(g.num_tiles(), n);
    EXPECT_LE(g.num_tiles(), 2 * n + 2);
  }
}

TEST(TileGrid, NeighborsAreSymmetricAndAdjacent) {
  const TileGrid g(9, 9, 3, 3);
  for (int t = 0; t < g.num_tiles(); ++t) {
    const TileId tile{static_cast<std::uint32_t>(t)};
    for (TileId nb : g.neighbors(tile)) {
      EXPECT_TRUE(g.adjacent(tile, nb));
      EXPECT_TRUE(g.adjacent(nb, tile));
    }
  }
  // Corner tile has 2 neighbors, center has 4.
  EXPECT_EQ(g.neighbors(g.tile_at(0, 0)).size(), 2u);
  EXPECT_EQ(g.neighbors(g.tile_at(4, 4)).size(), 4u);
}

TEST(RegionMask, InteriorRippedBoundaryAllowed) {
  const Device device(DeviceParams{8, 8, 6});
  const RrGraph rr(device);
  const TileGrid grid(8, 8, 2, 2);
  std::vector<std::uint8_t> affected(4, 0);
  affected[grid.tile_at(1, 1).value()] = 1;  // bottom-left 4x4 tile

  const RegionMasks masks = build_region_masks(rr, grid, affected);
  // A channel strictly inside the tile is ripped and allowed.
  EXPECT_TRUE(masks.rip[rr.chanx(1, 2, 0).value()]);
  EXPECT_TRUE(masks.allowed[rr.chanx(1, 2, 0).value()]);
  // The channel on the tile boundary (y=4) borders a locked tile: allowed
  // (free tracks usable) but not ripped (locked interface).
  EXPECT_FALSE(masks.rip[rr.chanx(1, 4, 0).value()]);
  EXPECT_TRUE(masks.allowed[rr.chanx(1, 4, 0).value()]);
  // Channels outside: neither.
  EXPECT_FALSE(masks.allowed[rr.chanx(6, 6, 0).value()]);
  EXPECT_FALSE(masks.rip[rr.chanx(6, 6, 0).value()]);
  // Pins of an affected site: both; pins outside: neither.
  EXPECT_TRUE(masks.rip[rr.sink(device.clb_site(1, 1)).value()]);
  EXPECT_FALSE(masks.allowed[rr.sink(device.clb_site(6, 6)).value()]);
}

TEST(RegionMask, InterfaceBetweenTwoAffectedTilesDissolves) {
  const Device device(DeviceParams{8, 8, 6});
  const RrGraph rr(device);
  const TileGrid grid(8, 8, 2, 2);
  std::vector<std::uint8_t> affected(4, 1);  // everything affected
  const RegionMasks masks = build_region_masks(rr, grid, affected);
  // The x=4 vertical channel between two affected tiles is ripped.
  EXPECT_TRUE(masks.rip[rr.chany(4, 2, 0).value()]);
}

TEST(Flow, BuildFlatProducesValidDesign) {
  FlowParams fp;
  fp.seed = 2;
  TiledDesign d = build_flat(test::make_random_netlist(60, 2), fp);
  d.validate();
  EXPECT_GT(d.packed.num_clbs(), 20u);
  EXPECT_FALSE(d.tiles.has_value());
}

class TiledBuildTest : public ::testing::Test {
 protected:
  static TiledDesign make(int luts = 80, int tiles = 6,
                          double overhead = 0.20, std::uint64_t seed = 3) {
    TilingParams tp;
    tp.seed = seed;
    tp.target_overhead = overhead;
    tp.num_tiles = tiles;
    return TilingEngine::build(test::make_random_netlist(luts, seed), tp);
  }
};

TEST_F(TiledBuildTest, BuildIsValidAndLocked) {
  TiledDesign d = make();
  d.validate();
  ASSERT_TRUE(d.tiles.has_value());
  EXPECT_GE(d.tiles->num_tiles(), 6);
  for (std::uint8_t lock : d.locked) EXPECT_EQ(lock, 1);
}

TEST_F(TiledBuildTest, SlackIsDistributedAcrossTiles) {
  TiledDesign d = make(120, 8, 0.25);
  // Every tile keeps some free sites (the user-controlled reserve).
  int tiles_with_slack = 0;
  for (int t = 0; t < d.tiles->num_tiles(); ++t)
    if (d.tile_free(TileId{static_cast<std::uint32_t>(t)}) > 0)
      ++tiles_with_slack;
  EXPECT_GE(tiles_with_slack, d.tiles->num_tiles() - 1);
}

TEST_F(TiledBuildTest, AreaOverheadNearTarget) {
  TiledDesign d = make(120, 8, 0.20);
  const double overhead =
      static_cast<double>(d.device->num_clb_sites()) /
          static_cast<double>(d.packed.num_clbs()) -
      1.0;
  EXPECT_GE(overhead, 0.15);
  EXPECT_LE(overhead, 0.45);  // integer grid rounding inflates small designs
}

TEST_F(TiledBuildTest, RejectsTooLittleOverhead) {
  TilingParams tp;
  tp.target_overhead = 0.01;
  EXPECT_THROW(TilingEngine::build(test::make_random_netlist(40, 1), tp),
               CheckError);
}

TEST_F(TiledBuildTest, ExpandForCapacityGrowsUntilFit) {
  TiledDesign d = make(120, 8, 0.20);
  const TileId seed = TileId{0};
  const auto one = TilingEngine::expand_for_capacity(d, {seed}, 1);
  EXPECT_GE(one.size(), 1u);
  const int total_free = [&] {
    int f = 0;
    for (int t = 0; t < d.tiles->num_tiles(); ++t)
      f += d.tile_free(TileId{static_cast<std::uint32_t>(t)});
    return f;
  }();
  // Asking for almost all free capacity pulls in most tiles.
  const auto many =
      TilingEngine::expand_for_capacity(d, {seed}, total_free - 1);
  EXPECT_GT(many.size(), one.size());
  // Asking for more than the device has throws.
  EXPECT_THROW(TilingEngine::expand_for_capacity(d, {seed}, total_free + 100),
               CheckError);
}

TEST_F(TiledBuildTest, ExpansionOnlyAddsNeighbors) {
  TiledDesign d = make(120, 9, 0.20);
  const auto affected =
      TilingEngine::expand_for_capacity(d, {TileId{0}}, 10);
  // The affected set must be connected (BFS from the seed covers it).
  std::unordered_set<std::uint32_t> set;
  for (TileId t : affected) set.insert(t.value());
  std::unordered_set<std::uint32_t> reached{affected[0].value()};
  std::vector<TileId> queue{affected[0]};
  // Seed is TileId{0} and affected is sorted, so affected[0] == seed.
  for (std::size_t head = 0; head < queue.size(); ++head)
    for (TileId nb : d.tiles->neighbors(queue[head]))
      if (set.count(nb.value()) && reached.insert(nb.value()).second)
        queue.push_back(nb);
  EXPECT_EQ(reached.size(), set.size());
}

/// The confinement property (the paper's core claim): applying a change
/// leaves placement and routing outside the affected tiles bit-identical.
TEST_F(TiledBuildTest, EcoConfinementOutsideAffectedTiles) {
  TiledDesign d = make(100, 9, 0.25, 7);

  // Snapshot placement and routing.
  std::unordered_map<std::uint32_t, SiteIndex> sites_before;
  for (InstId id : d.packed.live_insts())
    sites_before[id.value()] = d.placement->site_of(id);
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> trees_before;
  for (const PhysNet& n : d.nets) {
    std::vector<std::uint32_t> nodes;
    for (RrNodeId x : d.routing->tree(n.net).nodes) nodes.push_back(x.value());
    trees_before[n.net.value()] = std::move(nodes);
  }

  // Change: add a small cone anchored at one LUT.
  CellId anchor;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) {
      anchor = id;
      break;
    }
  const NetId tap = d.netlist.cell_output(anchor);
  EcoChange change;
  const CellId n1 =
      d.netlist.add_lut("eco_n1", TruthTable::inverter(), {tap});
  const CellId n2 = d.netlist.add_dff("eco_n2", d.netlist.cell_output(n1));
  // Keep the new logic observed so it is not dead (feeds an existing LUT?
  // no: new cells may only feed each other or be probes; a dangling DFF is
  // fine for the physical flow).
  change.added_cells = {n1, n2};
  change.anchor_cells = {anchor};

  EcoOptions opts;
  opts.seed = 5;
  const EcoOutcome out = TilingEngine::apply_change(d, change, opts);
  ASSERT_TRUE(out.success);
  d.validate();

  // Affected set as a site predicate.
  std::unordered_set<std::uint32_t> affected_tiles;
  for (TileId t : out.affected) affected_tiles.insert(t.value());
  auto site_in_affected = [&](SiteIndex s) {
    if (!d.device->is_clb_site(s)) return false;
    auto [x, y] = d.device->clb_xy(s);
    return affected_tiles.count(d.tiles->tile_at(x, y).value()) > 0;
  };

  // 1) Instances outside the affected tiles did not move.
  for (const auto& [inst, site] : sites_before) {
    if (site_in_affected(site)) continue;
    EXPECT_EQ(d.placement->site_of(InstId{inst}), site)
        << "locked instance moved";
  }

  // 2) Nets whose old tree never entered the affected region kept their
  //    exact routing.
  const RegionMasks masks = [&] {
    std::vector<std::uint8_t> ta(
        static_cast<std::size_t>(d.tiles->num_tiles()), 0);
    for (TileId t : out.affected) ta[t.value()] = 1;
    return build_region_masks(*d.rr, *d.tiles, ta);
  }();
  for (const auto& [net, nodes] : trees_before) {
    bool touched = false;
    for (std::uint32_t x : nodes)
      if (masks.rip[x]) touched = true;
    if (touched) continue;
    const RouteTree& now = d.routing->tree(NetId{net});
    ASSERT_EQ(now.nodes.size(), nodes.size()) << "locked net re-routed";
    for (std::size_t i = 0; i < nodes.size(); ++i)
      EXPECT_EQ(now.nodes[i].value(), nodes[i]);
  }

  // 3) The new instances landed inside the affected region.
  for (CellId c : change.added_cells) {
    const InstId inst = d.packed.inst_of_cell(c);
    EXPECT_TRUE(site_in_affected(d.placement->site_of(inst)));
  }
}

TEST_F(TiledBuildTest, EcoModifyOnlyTouchesOneTileForSmallChange) {
  TiledDesign d = make(100, 9, 0.25, 11);
  CellId victim;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) victim = id;
  ASSERT_TRUE(victim.valid());
  d.netlist.set_lut_function(victim,
                             d.netlist.cell(victim).function.complement());
  EcoChange change;
  change.modified_cells = {victim};
  EcoOptions opts;
  const EcoOutcome out = TilingEngine::apply_change(d, change, opts);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.affected.size(), 1u + out.region_expansions * 8u);
  d.validate();
}

TEST_F(TiledBuildTest, EcoPreservesFunctionality) {
  // Physical re-implementation must not change behaviour: simulate before
  // and after an ECO that only adds observation-side logic.
  TiledDesign d = make(80, 6, 0.25, 13);
  const auto patterns = random_patterns(
      d.netlist.primary_inputs().size(), 64, 99);
  const auto before = test::run_patterns(d.netlist, patterns);

  CellId anchor;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) {
      anchor = id;
      break;
    }
  EcoChange change;
  const CellId probe = d.netlist.add_lut(
      "probe", TruthTable::buffer(), {d.netlist.cell_output(anchor)});
  change.added_cells = {probe};
  change.anchor_cells = {anchor};
  ASSERT_TRUE(TilingEngine::apply_change(d, change, EcoOptions{}).success);

  const auto after = test::run_patterns(d.netlist, patterns);
  EXPECT_EQ(before, after);
  d.validate();
}

TEST(Flow, ReplaceRerouteAllKeepsValidity) {
  FlowParams fp;
  fp.seed = 21;
  fp.slack = 0.2;
  TiledDesign d = build_flat(test::make_random_netlist(60, 21), fp);
  const PnrEffort e = replace_and_reroute_all(d, 77);
  EXPECT_GT(e.instances_placed, 0u);
  EXPECT_GT(e.nets_routed, 0u);
  d.validate();
}

TEST(Flow, CloneIsDeepAndIdentical) {
  FlowParams fp;
  fp.seed = 8;
  fp.slack = 0.2;
  TiledDesign d = build_flat(test::make_random_netlist(50, 8), fp);
  TiledDesign c = d.clone();
  c.validate();
  for (InstId id : d.packed.live_insts())
    EXPECT_EQ(d.placement->site_of(id), c.placement->site_of(id));
  // Mutating the clone leaves the original untouched.
  const InstId some = d.packed.live_insts().front();
  const SiteIndex before = d.placement->site_of(some);
  c.placement->clear(some);
  EXPECT_EQ(d.placement->site_of(some), before);
}

}  // namespace
}  // namespace emutile
