// Orchestrator tests: the fleet-config format, the mergeable shard-report
// wire format (exact round-trip + merge equivalence), and the campaign
// coordinator end-to-end — sharded orchestration over in-process serviced
// instances, re-dispatch when an instance is killed mid-campaign, a rolling
// drain-restart upgrade across the whole fleet, spool-addressed instances,
// and the all-instances-down in-process fallback. The load-bearing
// assertion throughout: the merged fleet report is byte-identical to a
// direct unsharded run_campaign of the same spec (with a field-by-field
// differential cross-check explaining any divergence).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_report_io.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "orchestrator/campaign_coordinator.hpp"
#include "service/service_client.hpp"
#include "service/service_endpoint.hpp"
#include "service/session_service.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace emutile {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name) {
    path = fs::path(::testing::TempDir()) / ("emutile-" + name);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// A campaign big enough that a 3-shard split gives every shard real work:
/// 2 error kinds x `replicas` replicas on one design.
CampaignSpec sharded_test_spec(int replicas, std::uint64_t master_seed) {
  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.error_kinds = {ErrorKind::kWrongPolarity, ErrorKind::kWrongConnection};
  spec.tilings.clear();
  TilingParams tiling;
  tiling.num_tiles = 6;
  tiling.target_overhead = 0.3;
  spec.tilings.push_back(tiling);
  spec.sessions_per_scenario = replicas;
  spec.master_seed = master_seed;
  spec.num_patterns = 96;
  return spec;
}

// ------------------------------------------------------------ fleet config ---

TEST(FleetConfigIo, RoundTripsAndToleratesCommentsAndBlanks) {
  const std::string text =
      "# production fleet\n"
      "emutile-fleet v1\n"
      "\n"
      "instance alpha socket /var/emutile-a/serviced.sock\n"
      "instance beta spool /var/emutile-b\n"
      "instance gamma tcp build-host:7733\n"
      "end\n";
  const FleetConfig fleet = parse_fleet_config(text);
  ASSERT_EQ(fleet.instances.size(), 3u);
  EXPECT_EQ(fleet.instances[0].name, "alpha");
  EXPECT_EQ(fleet.instances[0].address.kind, AddressKind::kUnix);
  EXPECT_EQ(fleet.instances[0].address.path, "/var/emutile-a/serviced.sock");
  EXPECT_EQ(fleet.instances[1].name, "beta");
  EXPECT_EQ(fleet.instances[1].address.kind, AddressKind::kSpool);
  EXPECT_EQ(fleet.instances[2].address.kind, AddressKind::kTcp);
  EXPECT_EQ(fleet.instances[2].address.host, "build-host");
  EXPECT_EQ(fleet.instances[2].address.port, 7733);

  // serialize -> parse is the identity on the canonical form.
  const std::string canonical = serialize_fleet_config(fleet);
  EXPECT_EQ(serialize_fleet_config(parse_fleet_config(canonical)), canonical);
}

TEST(FleetConfigIo, MalformedInputsThrowWithContext) {
  const auto reject = [](const std::string& text) {
    EXPECT_THROW(static_cast<void>(parse_fleet_config(text)), CheckError)
        << text;
  };
  reject("");                                          // no header
  reject("emutile-fleet v2\nend\n");                   // wrong version
  reject("emutile-fleet v1\n");                        // missing end
  reject("emutile-fleet v1\nend\n");                   // empty fleet
  reject("emutile-fleet v1\nhost a socket /s\nend\n");  // unknown key
  reject("emutile-fleet v1\ninstance\nend\n");          // missing name
  reject("emutile-fleet v1\ninstance a\nend\n");        // missing kind
  reject("emutile-fleet v1\ninstance a socket\nend\n");  // missing path
  reject("emutile-fleet v1\ninstance a tcp 1.2.3.4\nend\n");   // no port
  reject("emutile-fleet v1\ninstance a pigeon /coop\nend\n");  // bad kind
  reject("emutile-fleet v1\ninstance a socket /s extra\nend\n");
  reject(
      "emutile-fleet v1\ninstance a socket /s\ninstance a socket /t\nend\n");
  reject("emutile-fleet v1\ninstance a socket /s\nend\nleftover\n");
  // Line numbers make config mistakes debuggable.
  try {
    static_cast<void>(parse_fleet_config(
        "emutile-fleet v1\n# comment\nfrobnicate\nend\n"));
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// ----------------------------------------------------- shard report format ---

TEST(CampaignReportIo, ExactRoundTripThroughTheWireFormat) {
  // Baselines on: the serialized form must carry scenario baselines and the
  // accumulators' exact internal moments, not just presentation values.
  CampaignSpec spec = sharded_test_spec(2, 77);
  spec.measure_baselines = true;
  const CampaignReport original = run_campaign(spec);

  const std::string wire = serialize_campaign_report(original);
  const CampaignReport parsed = parse_campaign_report(wire);

  // Indistinguishable in presentation bytes and in re-serialized bytes.
  EXPECT_EQ(parsed.to_json(), original.to_json());
  EXPECT_EQ(parsed.to_csv(), original.to_csv());
  EXPECT_EQ(serialize_campaign_report(parsed), wire);
  EXPECT_EQ(parsed.debug_work_samples, original.debug_work_samples);
  EXPECT_EQ(parsed.cache_hits, original.cache_hits);
  EXPECT_EQ(parsed.num_threads, original.num_threads);
}

TEST(CampaignReportIo, MergeOverParsedShardsMatchesUnshardedRun) {
  // The contract the coordinator stands on: shard reports that travelled
  // the wire format merge into the exact bytes of a direct unsharded run.
  CampaignSpec spec = sharded_test_spec(3, 21);
  spec.measure_baselines = true;
  const CampaignReport full = run_campaign(spec);

  CampaignReport merged;
  for (std::size_t i = 0; i < 3; ++i) {
    const CampaignReport piece = run_campaign(spec.shard(i, 3));
    const CampaignReport parsed =
        parse_campaign_report(serialize_campaign_report(piece));
    if (i == 0)
      merged = parsed;
    else
      merged.merge(parsed);
  }
  EXPECT_EQ(merged.to_json(), full.to_json());
  EXPECT_EQ(merged.to_csv(), full.to_csv());
}

TEST(CampaignReportIo, MalformedReportsThrowWithLineNumbers) {
  const auto reject = [](const std::string& text) {
    EXPECT_THROW(static_cast<void>(parse_campaign_report(text)), CheckError)
        << text;
  };
  reject("");
  reject("emutile-report v1\n");  // old version
  reject("emutile-report v2\n");  // truncated
  reject("emutile-report v2\ncampaign 1 1 0 0 1 1 1 1\n");  // truncated
  reject(
      "emutile-report v2\ncampaign banana 1 0 0 1 1 1 1\n");  // bad number
  const CampaignReport empty_report =
      run_campaign(sharded_test_spec(0, 1).shard(0, 2));
  std::string wire = serialize_campaign_report(empty_report);
  reject(wire.substr(0, wire.size() / 2));  // cut mid-stream
  // Field-order violations are rejected, not silently misread.
  reject("emutile-report v2\nbuild_work 0\n");
  try {
    static_cast<void>(
        parse_campaign_report("emutile-report v2\nwrong 1\n"));
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

// -------------------------------------------------------------- coordinator ---

/// One in-process "host": a SessionService plus its socket endpoint, both
/// destroyable mid-test to simulate an instance dying. `attach` replays the
/// restart side of a rolling upgrade: re-attach to the root a previous
/// incarnation left behind before serving on the same socket path.
struct InProcessInstance {
  ServiceConfig config;
  std::unique_ptr<SessionService> service;
  std::unique_ptr<ServiceEndpoint> endpoint;

  InProcessInstance(const fs::path& root, std::size_t threads,
                    bool attach = false,
                    EndpointOptions endpoint_options = {}) {
    config.root = root;
    config.num_threads = threads;
    config.snapshot_every = 0;
    service = std::make_unique<SessionService>(config);
    if (attach) static_cast<void>(service->reattach());
    endpoint = std::make_unique<ServiceEndpoint>(
        *service, root / "serviced.sock", endpoint_options);
  }

  void kill() {
    endpoint.reset();  // connections drain, socket unlinked
    service.reset();   // queued work cancelled, in-flight drained
  }

  [[nodiscard]] bool has_accepted_campaign() const {
    return service && !service->list().empty();
  }
};

TEST(CampaignCoordinator, KilledInstanceMidCampaignStillMergesByteIdentical) {
  // Three instances, three shards — then one instance dies mid-campaign.
  // The coordinator must re-dispatch its shard to a survivor and still
  // produce the exact bytes of an unsharded direct run.
  ScratchDir scratch("coord-kill");
  std::vector<std::unique_ptr<InProcessInstance>> hosts;
  FleetConfig fleet;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "host" + std::to_string(i);
    hosts.push_back(std::make_unique<InProcessInstance>(scratch.path / name,
                                                        /*threads=*/1));
    fleet.instances.push_back(
        {name,
         ServiceAddress::unix_socket(hosts.back()->endpoint->socket_path())});
  }

  // Enough sessions per shard (4 each) that the doomed instance cannot
  // finish before the kill lands: the kill fires the moment the instance
  // has accepted its shard, while sessions are still running.
  const CampaignSpec spec = sharded_test_spec(/*replicas=*/6, 2000);

  CoordinatorOptions options;
  options.poll_interval = std::chrono::milliseconds(20);
  options.request_timeout_ms = 10'000;
  options.local_threads = 2;
  std::atomic<std::size_t> snapshots{0};
  options.on_snapshot = [&](const FleetSnapshot& snap) {
    ++snapshots;
    EXPECT_EQ(snap.shards.size(), 3u);
    EXPECT_EQ(snap.total_instances, 3u);
  };

  OrchestrationResult result;
  CampaignCoordinator coordinator(fleet, options);
  std::thread orchestration([&] { result = coordinator.run(spec); });

  // Kill host1 as soon as it has accepted a shard.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!hosts[1]->has_accepted_campaign() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(hosts[1]->has_accepted_campaign())
      << "host1 never received a shard";
  hosts[1]->kill();
  orchestration.join();

  EXPECT_EQ(result.num_shards, 3u);
  EXPECT_GE(result.redispatches, 1u)
      << "the killed instance's shard must have been re-dispatched";
  EXPECT_EQ(result.local_shards, 0u)
      << "two healthy instances remained — no local fallback expected";
  EXPECT_GE(snapshots.load(), 1u);
  for (const ShardProgress& shard : result.shards) {
    EXPECT_EQ(shard.state, ShardState::kDone);
    EXPECT_NE(shard.instance, "host1")
        << "no shard may end on the killed instance";
  }

  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());
  EXPECT_EQ(result.report.to_csv(), direct.to_csv());
  // The differential cross-check pins divergence to a scenario row and
  // column if the byte-equality above ever regresses.
  EXPECT_EQ(test::diff_campaign_reports_csv(direct.to_csv(),
                                            result.report.to_csv()),
            "");
}

TEST(CampaignCoordinator, RollingDrainRestartKeepsMergedReportByteIdentical) {
  // A rolling upgrade across the whole fleet, one instance at a time, while
  // a campaign is in flight: drain an instance over the wire (it finishes
  // its in-flight shard), restart it re-attached to the same root and
  // socket, and move to the next. The coordinator must keep collecting from
  // draining instances, re-dispatch anything that slips, re-admit restarted
  // daemons via the PING re-probe — and the merged report must come out
  // byte-identical to an unsharded direct run.
  ScratchDir scratch("coord-rolling");
  std::vector<std::unique_ptr<InProcessInstance>> hosts;
  FleetConfig fleet;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "rhost" + std::to_string(i);
    hosts.push_back(std::make_unique<InProcessInstance>(scratch.path / name,
                                                        /*threads=*/1));
    fleet.instances.push_back(
        {name,
         ServiceAddress::unix_socket(hosts.back()->endpoint->socket_path())});
  }

  const CampaignSpec spec = sharded_test_spec(/*replicas=*/6, 9000);
  CoordinatorOptions options;
  options.poll_interval = std::chrono::milliseconds(20);
  options.reprobe_interval = std::chrono::milliseconds(50);
  options.request_timeout_ms = 10'000;
  options.local_threads = 2;
  CampaignCoordinator coordinator(fleet, options);
  OrchestrationResult result;
  std::atomic<bool> run_done{false};
  std::thread orchestration([&] {
    result = coordinator.run(spec);
    run_done.store(true);
  });

  std::size_t restarted = 0;
  for (std::size_t i = 0; i < hosts.size() && !run_done.load(); ++i) {
    // Wait until this instance holds a shard, then drain it over the wire —
    // exactly what a rolling-upgrade script does.
    const auto accept_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!hosts[i]->has_accepted_campaign() && !run_done.load() &&
           std::chrono::steady_clock::now() < accept_deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (run_done.load() || !hosts[i]->has_accepted_campaign()) break;

    const ServiceClient client(hosts[i]->endpoint->socket_path());
    client.drain();
    EXPECT_TRUE(hosts[i]->service->draining());

    // The draining instance finishes what it holds; give the coordinator a
    // beat to collect before the "process" exits.
    hosts[i]->service->drain();
    std::this_thread::sleep_for(options.poll_interval * 3);

    // Restart re-attached on the same root and socket: the re-probe returns
    // it to the rotation while the run is still going.
    const fs::path root = hosts[i]->config.root;
    hosts[i]->kill();
    hosts[i] = std::make_unique<InProcessInstance>(root, /*threads=*/1,
                                                   /*attach=*/true);
    EXPECT_FALSE(hosts[i]->service->draining())
        << "a restarted daemon admits work again";
    ++restarted;
  }
  orchestration.join();

  EXPECT_GE(restarted, 1u) << "the rolling upgrade never touched the fleet";
  // A restarted instance comes back idle, so work stealing may have split
  // in-flight shards for it — at least the original three exist.
  EXPECT_GE(result.num_shards, 3u);
  for (const ShardProgress& shard : result.shards)
    EXPECT_EQ(shard.state, ShardState::kDone);

  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());
  EXPECT_EQ(result.report.to_csv(), direct.to_csv());
  EXPECT_EQ(test::diff_campaign_reports_csv(direct.to_csv(),
                                            result.report.to_csv()),
            "");
}

TEST(CampaignCoordinator, WorkStealingSplitsASlowShardDeterministically) {
  // One shard, two instances: instance B starts idle, so the coordinator
  // must split A's in-flight shard and hand the second half to B — and the
  // merged report must still be byte-identical to the unsharded run (seeds
  // are (scenario, replica)-derived, never placement-derived).
  ScratchDir scratch("coord-steal");
  InProcessInstance host_a(scratch.path / "shost0", /*threads=*/1);
  InProcessInstance host_b(scratch.path / "shost1", /*threads=*/1);
  FleetConfig fleet;
  fleet.instances.push_back(
      {"shost0", ServiceAddress::unix_socket(host_a.endpoint->socket_path())});
  fleet.instances.push_back(
      {"shost1", ServiceAddress::unix_socket(host_b.endpoint->socket_path())});

  const CampaignSpec spec = sharded_test_spec(/*replicas=*/6, 3100);
  CoordinatorOptions options;
  options.num_shards = 1;  // the whole campaign lands on one instance...
  options.poll_interval = std::chrono::milliseconds(20);
  options.request_timeout_ms = 10'000;
  CampaignCoordinator coordinator(fleet, options);
  const OrchestrationResult result = coordinator.run(spec);

  // ...so the idle second instance can only get work by stealing.
  EXPECT_GE(result.steals, 1u) << "idle shost1 never stole from shost0";
  EXPECT_GE(result.num_shards, 2u) << "a steal must append a shard";
  // The victim's narrowed half re-dispatches where its cache is warm.
  EXPECT_GE(result.affinity_dispatches, 1u)
      << "the narrowed victim shard should re-dispatch by cache affinity";
  std::set<std::string> serving;
  for (const ShardProgress& shard : result.shards) {
    EXPECT_EQ(shard.state, ShardState::kDone);
    serving.insert(shard.instance);
  }
  EXPECT_TRUE(serving.count("shost1")) << "the stolen half must run on B";

  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());
  EXPECT_EQ(result.report.to_csv(), direct.to_csv());
  EXPECT_EQ(test::diff_campaign_reports_csv(direct.to_csv(),
                                            result.report.to_csv()),
            "");
}

TEST(CampaignCoordinator, DisabledStealingLeavesTheSingleShardAlone) {
  ScratchDir scratch("coord-nosteal");
  InProcessInstance host_a(scratch.path / "nhost0", /*threads=*/1);
  InProcessInstance host_b(scratch.path / "nhost1", /*threads=*/1);
  FleetConfig fleet;
  fleet.instances.push_back(
      {"nhost0", ServiceAddress::unix_socket(host_a.endpoint->socket_path())});
  fleet.instances.push_back(
      {"nhost1", ServiceAddress::unix_socket(host_b.endpoint->socket_path())});

  const CampaignSpec spec = sharded_test_spec(/*replicas=*/3, 3200);
  CoordinatorOptions options;
  options.num_shards = 1;
  options.enable_stealing = false;
  options.poll_interval = std::chrono::milliseconds(20);
  CampaignCoordinator coordinator(fleet, options);
  const OrchestrationResult result = coordinator.run(spec);

  EXPECT_EQ(result.steals, 0u);
  EXPECT_EQ(result.num_shards, 1u);
  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());
}

TEST(CampaignCoordinator, TcpFleetSurvivesKillPlusJoinMidCampaign) {
  // The elasticity acceptance test, over real TCP loopback: a fleet of two
  // TCP instances loses one mid-campaign while a third joins through a
  // fleet-file rewrite (the SIGHUP/mtime reload path). The dead instance's
  // shard re-dispatches, the joiner enters the rotation — and the merged
  // report still matches the unsharded direct run byte for byte.
  ScratchDir scratch("coord-tcp-elastic");
  const auto tcp_instance = [&](const std::string& name) {
    EndpointOptions endpoint_options;
    endpoint_options.mode = EndpointMode::kReactor;
    endpoint_options.tcp = ServiceAddress::tcp("127.0.0.1", 0);
    auto host = std::make_unique<InProcessInstance>(
        scratch.path / name, /*threads=*/1, /*attach=*/false,
        endpoint_options);
    EXPECT_TRUE(host->endpoint->tcp_address().has_value());
    return host;
  };
  auto host_a = tcp_instance("ehost-a");
  auto host_b = tcp_instance("ehost-b");

  FleetConfig fleet;
  fleet.instances.push_back({"ehost-a", *host_a->endpoint->tcp_address()});
  fleet.instances.push_back({"ehost-b", *host_b->endpoint->tcp_address()});
  const fs::path fleet_file = scratch.path / "fleet.cfg";
  const auto write_fleet = [&](const FleetConfig& membership) {
    std::ofstream out(fleet_file, std::ios::trunc);
    out << serialize_fleet_config(membership);
  };
  write_fleet(fleet);

  const CampaignSpec spec = sharded_test_spec(/*replicas=*/6, 5150);
  CoordinatorOptions options;
  options.poll_interval = std::chrono::milliseconds(20);
  options.reprobe_interval = std::chrono::milliseconds(50);
  options.request_timeout_ms = 10'000;
  options.local_threads = 2;
  options.fleet_file = fleet_file;
  CampaignCoordinator coordinator(fleet, options);
  OrchestrationResult result;
  std::thread orchestration([&] { result = coordinator.run(spec); });

  // The kill waits for ehost-a to hold a shard; the join rides the same
  // fleet-file rewrite that retires it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!host_a->has_accepted_campaign() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(host_a->has_accepted_campaign())
      << "ehost-a never received a shard over TCP";
  host_a->kill();
  auto host_c = tcp_instance("ehost-c");
  FleetConfig rewritten;
  rewritten.instances.push_back({"ehost-b", *host_b->endpoint->tcp_address()});
  rewritten.instances.push_back({"ehost-c", *host_c->endpoint->tcp_address()});
  write_fleet(rewritten);
  orchestration.join();

  EXPECT_GE(result.redispatches, 1u)
      << "the killed instance's shard must have been re-dispatched";
  EXPECT_GE(result.joined_instances, 1u)
      << "the fleet-file rewrite must have joined ehost-c mid-campaign";
  EXPECT_EQ(result.local_shards, 0u)
      << "healthy TCP instances remained — no local fallback expected";
  std::set<std::string> serving;
  for (const ShardProgress& shard : result.shards) {
    EXPECT_EQ(shard.state, ShardState::kDone);
    EXPECT_NE(shard.instance, "ehost-a")
        << "no shard may end on the killed instance";
    serving.insert(shard.instance);
  }

  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());
  EXPECT_EQ(result.report.to_csv(), direct.to_csv());
  EXPECT_EQ(test::diff_campaign_reports_csv(direct.to_csv(),
                                            result.report.to_csv()),
            "");
}

TEST(CampaignCoordinator, ControlListenerAnswersPingAndAppliesFleetUpdates) {
  // The wire-command membership path: while a campaign runs, the control
  // listener must answer PING, report the current membership on FLEET, and
  // apply a pushed `FLEET\n<config>` — joining an instance that then serves.
  ScratchDir scratch("coord-control");
  InProcessInstance host_a(scratch.path / "chost0", /*threads=*/1);
  FleetConfig fleet;
  fleet.instances.push_back(
      {"chost0", ServiceAddress::unix_socket(host_a.endpoint->socket_path())});

  const CampaignSpec spec = sharded_test_spec(/*replicas=*/6, 6001);
  CoordinatorOptions options;
  options.poll_interval = std::chrono::milliseconds(20);
  options.request_timeout_ms = 10'000;
  options.control_address =
      ServiceAddress::unix_socket(scratch.path / "control.sock");
  CampaignCoordinator coordinator(fleet, options);
  OrchestrationResult result;
  std::thread orchestration([&] { result = coordinator.run(spec); });

  // Wait for the control socket to come up, then exercise all three verbs.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::string pong;
  while (pong != "OK pong\n" &&
         std::chrono::steady_clock::now() < deadline) {
    try {
      pong = endpoint_request(*options.control_address, "PING\n", 2'000);
    } catch (const CheckError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_EQ(pong, "OK pong\n") << "control listener never came up";

  const std::string membership =
      endpoint_request(*options.control_address, "FLEET\n", 2'000);
  EXPECT_EQ(membership.rfind("OK fleet 1\n", 0), 0u) << membership;
  EXPECT_NE(membership.find("instance chost0 socket "), std::string::npos)
      << membership;

  InProcessInstance host_b(scratch.path / "chost1", /*threads=*/1);
  FleetConfig pushed = fleet;
  pushed.instances.push_back(
      {"chost1", ServiceAddress::unix_socket(host_b.endpoint->socket_path())});
  EXPECT_EQ(endpoint_request(*options.control_address,
                             "FLEET\n" + serialize_fleet_config(pushed),
                             2'000),
            "OK fleet 2\n");
  EXPECT_EQ(endpoint_request(*options.control_address, "BOGUS\n", 2'000)
                .rfind("ERR ", 0),
            0u);
  orchestration.join();

  EXPECT_GE(result.joined_instances, 1u)
      << "the pushed FLEET config must have joined chost1";
  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());
  EXPECT_EQ(result.report.to_csv(), direct.to_csv());
}

TEST(CampaignCoordinator, AllInstancesDownFallsBackToInProcessExecution) {
  ScratchDir scratch("coord-down");
  FleetConfig fleet;
  fleet.instances.push_back(
      {"ghost-a", ServiceAddress::unix_socket(scratch.path / "no-such-a.sock")});
  fleet.instances.push_back(
      {"ghost-b", ServiceAddress::unix_socket(scratch.path / "no-such-b.sock")});

  const CampaignSpec spec = sharded_test_spec(2, 34);
  CoordinatorOptions options;
  options.poll_interval = std::chrono::milliseconds(10);
  options.local_threads = 2;
  CampaignCoordinator coordinator(fleet, options);
  const OrchestrationResult result = coordinator.run(spec);

  EXPECT_EQ(result.num_shards, 2u);
  EXPECT_EQ(result.local_shards, 2u);
  for (const ShardProgress& shard : result.shards)
    EXPECT_EQ(shard.instance, "local");
  // No reachable instance — the fleet metrics view stays honestly empty.
  EXPECT_EQ(result.metrics_instances, 0u);
  EXPECT_TRUE(result.fleet_metrics.empty());

  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());
  EXPECT_EQ(result.report.to_csv(), direct.to_csv());
}

TEST(CampaignCoordinator, CollectsFleetMetricsAndJournalsTheRun) {
  // A healthy 2-instance fleet: after the merged report, the coordinator
  // fetches METRICS from every socket instance and merges the registries;
  // the run's journal carries dispatch/collect/fleet-metrics records.
  ScratchDir scratch("coord-metrics");
  std::vector<std::unique_ptr<InProcessInstance>> hosts;
  FleetConfig fleet;
  for (int i = 0; i < 2; ++i) {
    const std::string name = "mhost" + std::to_string(i);
    hosts.push_back(std::make_unique<InProcessInstance>(scratch.path / name,
                                                        /*threads=*/1));
    fleet.instances.push_back(
        {name,
         ServiceAddress::unix_socket(hosts.back()->endpoint->socket_path())});
  }

  const CampaignSpec spec = sharded_test_spec(/*replicas=*/2, 4242);
  CoordinatorOptions options;
  options.poll_interval = std::chrono::milliseconds(20);
  EventJournal journal(scratch.path / "events.jsonl", "coord-metrics");
  options.journal = &journal;
  CampaignCoordinator coordinator(fleet, options);
  const OrchestrationResult result = coordinator.run(spec);

  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());

  // Both instances contributed a registry, and the fleet view shows the
  // traffic the orchestration itself generated. (In-process instances share
  // one process-wide registry, so assert activity, not exact per-host sums —
  // exact merge parity is pinned down in test_obs.cpp.)
  EXPECT_EQ(result.metrics_instances, 2u);
  ASSERT_FALSE(result.fleet_metrics.empty());
  ASSERT_TRUE(result.fleet_metrics.counters.count("endpoint.requests.STATUS"));
  EXPECT_GT(result.fleet_metrics.counters.at("endpoint.requests.STATUS"), 0u);
  ASSERT_TRUE(result.fleet_metrics.counters.count("endpoint.requests.SUBMIT"));
  ASSERT_TRUE(
      result.fleet_metrics.counters.count("service.sessions_completed"));
  ASSERT_TRUE(result.fleet_metrics.histograms.count("session.wall_us"));
  EXPECT_GT(result.fleet_metrics.histograms.at("session.wall_us").count, 0u);

  std::ifstream in(scratch.path / "events.jsonl");
  std::ostringstream events_os;
  events_os << in.rdbuf();
  const std::string events = events_os.str();
  for (const char* event : {"\"event\":\"dispatch\"", "\"event\":\"collect\"",
                            "\"event\":\"fleet-metrics\""}) {
    EXPECT_NE(events.find(event), std::string::npos)
        << event << " missing from:\n" << events;
  }
  EXPECT_NE(events.find("\"instances\":2"), std::string::npos) << events;
}

#ifndef EMUTILE_METRICS_DISABLED

TEST(CampaignCoordinator, StitchedFleetTraceIsParentCleanAcrossInstances) {
  // Three instances, three shards, one trace: the stitched fleet trace must
  // hold spans from the coordinator AND the instances under a single trace
  // id, with every parent reference resolving inside the trace (no orphans)
  // and every span id unique (the dedup contract for in-process fleets that
  // share one global tracer).
  ScratchDir scratch("coord-trace");
  Tracer::global().reset();
  std::vector<std::unique_ptr<InProcessInstance>> hosts;
  FleetConfig fleet;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "thost" + std::to_string(i);
    hosts.push_back(std::make_unique<InProcessInstance>(scratch.path / name,
                                                        /*threads=*/1));
    fleet.instances.push_back(
        {name,
         ServiceAddress::unix_socket(hosts.back()->endpoint->socket_path())});
  }

  const CampaignSpec spec = sharded_test_spec(/*replicas=*/3, 777);
  CoordinatorOptions options;
  options.poll_interval = std::chrono::milliseconds(20);
  CampaignCoordinator coordinator(fleet, options);
  const OrchestrationResult result = coordinator.run(spec);

  EXPECT_EQ(result.trace_instances, 3u);
  ASSERT_TRUE(result.trace.valid());
  ASSERT_FALSE(result.fleet_trace.empty());

  std::set<std::uint64_t> ids;
  std::set<std::string> names;
  for (const TraceSpan& span : result.fleet_trace) {
    EXPECT_EQ(span.trace_id, result.trace.trace_id)
        << span.name << " belongs to a different trace";
    EXPECT_FALSE(span.open) << span.name;
    EXPECT_TRUE(ids.insert(span.span_id).second)
        << span.name << " duplicates a span id";
    names.insert(span.name);
  }
  for (const TraceSpan& span : result.fleet_trace)
    if (span.parent_id != 0)
      EXPECT_TRUE(ids.count(span.parent_id))
          << span.name << " has an orphan parent reference";

  // The whole causal chain is present: run -> dispatch -> request ->
  // campaign -> session.
  for (const char* expected :
       {"orchestrate.run", "orchestrate.dispatch", "endpoint.request.SUBMIT",
        "campaign.run", "session.run"}) {
    EXPECT_TRUE(names.count(expected)) << expected << " missing";
  }

  // Timestamps are sorted and the export is valid Chrome trace-event JSON.
  for (std::size_t i = 1; i < result.fleet_trace.size(); ++i)
    EXPECT_GE(result.fleet_trace[i].start_us,
              result.fleet_trace[i - 1].start_us);
  const std::string json = trace_events_json(result.fleet_trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"orchestrate.run\""), std::string::npos);
}

#endif  // EMUTILE_METRICS_DISABLED

TEST(CampaignCoordinator, FallbackDisabledThrowsWhenFleetIsDown) {
  ScratchDir scratch("coord-nofallback");
  FleetConfig fleet;
  fleet.instances.push_back(
      {"ghost", ServiceAddress::unix_socket(scratch.path / "no-such.sock")});
  CoordinatorOptions options;
  options.allow_local_fallback = false;
  CampaignCoordinator coordinator(fleet, options);
  const CampaignSpec spec = sharded_test_spec(1, 5);
  EXPECT_THROW(static_cast<void>(coordinator.run(spec)), CheckError);
}

TEST(CampaignCoordinator, SpoolAddressedInstanceCompletesTheCampaign) {
  // A daemon reachable only through its spool directory (--no-socket):
  // shard specs go in via spool/, shard reports come back by watching out/.
  ScratchDir scratch("coord-spool");
  InProcessInstance host(scratch.path / "host", /*threads=*/2);

  std::atomic<bool> stop{false};
  std::thread spool_poller([&] {
    while (!stop.load()) {
      static_cast<void>(host.service->poll_spool());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  FleetConfig fleet;
  fleet.instances.push_back(
      {"spooled", ServiceAddress::spool(host.config.root)});
  CoordinatorOptions options;
  options.num_shards = 2;  // both shards through the one spool instance
  options.poll_interval = std::chrono::milliseconds(20);
  CampaignCoordinator coordinator(fleet, options);
  const CampaignSpec spec = sharded_test_spec(2, 8);
  const OrchestrationResult result = coordinator.run(spec);
  stop.store(true);
  spool_poller.join();

  EXPECT_EQ(result.num_shards, 2u);
  EXPECT_EQ(result.local_shards, 0u);
  const CampaignReport direct = run_campaign(spec);
  EXPECT_EQ(result.report.to_json(), direct.to_json());
  EXPECT_EQ(result.report.to_csv(), direct.to_csv());
}

TEST(CampaignCoordinator, RejectsAlreadyShardedSpecs) {
  FleetConfig fleet;
  fleet.instances.push_back(
      {"a", ServiceAddress::unix_socket("/nowhere.sock")});
  CampaignCoordinator coordinator(fleet, {});
  const CampaignSpec spec = sharded_test_spec(1, 3).shard(0, 2);
  EXPECT_THROW(static_cast<void>(coordinator.run(spec)), CheckError);
}

}  // namespace
}  // namespace emutile
