// Durability tests: the per-campaign write-ahead journal (round-trip, torn
// appends, poisoned-journal rejection), crash-kill fault injection — SIGKILL
// at every ordering-sensitive persistence point, restart with reattach(),
// and a byte-identical final report with journaled sessions replayed from
// the result cache instead of re-executed — plus restart hygiene (stale and
// poisoned output dirs archived, never silently shadowed) and the
// drain-for-handoff admission contract behind rolling upgrades.
//
// The randomized kill test logs its seed and replays from EMUTILE_KILL_SEED,
// so a CI flake is reproducible with one environment variable.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "service/campaign_wal.hpp"
#include "service/service_client.hpp"
#include "service/service_endpoint.hpp"
#include "service/session_service.hpp"
#include "test_helpers.hpp"
#include "util/fault_inject.hpp"

namespace emutile {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name) {
    path = fs::path(::testing::TempDir()) / ("emutile-" + name);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// 2 error kinds x `replicas` replicas on one design — small enough that a
/// kill-restart cycle stays fast, big enough that a crash lands mid-stream.
std::string small_spec_text(std::uint64_t master_seed, int replicas = 2) {
  std::ostringstream os;
  os << "emutile-campaign v1\n"
     << "design 9sym\n"
     << "error_kind wrong-polarity\n"
     << "error_kind wrong-connection\n"
     << "tiling 6 0.3 1 12 4\n"
     << "sessions_per_scenario " << replicas << "\n"
     << "master_seed " << master_seed << "\n"
     << "num_patterns 96\n"
     << "end\n";
  return os.str();
}

ServiceConfig service_config(const fs::path& root) {
  ServiceConfig config;
  config.root = root;
  config.num_threads = 2;
  config.snapshot_every = 0;
  return config;
}

std::vector<std::string> wal_lines(const fs::path& path) {
  std::vector<std::string> lines;
  std::istringstream in(read_file(path));
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

void write_wal_lines(const fs::path& path,
                     const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

/// Flip one body character so the line's checksum no longer matches.
std::string corrupted(std::string line) {
  line[0] = line[0] == 'x' ? 'y' : 'x';
  return line;
}

// ------------------------------------------------------------ WAL format ---

TEST(CampaignWal, WriterRoundTripsThroughParser) {
  ScratchDir scratch("wal-roundtrip");
  const fs::path path = scratch.path / "deep" / "journal.wal";
  {
    CampaignWalWriter writer(path);  // creates the parent directory
    ASSERT_TRUE(writer.ok());
    writer.begin("kill-1", "00000000deadbeef", 3);
    writer.session(0, 0x1111, true);
    writer.session(2, 0, false);  // completed but not memoizable
    writer.complete("finished");
  }
  std::string error;
  const std::optional<CampaignWal> wal = load_campaign_wal(path, &error);
  ASSERT_TRUE(wal.has_value()) << error;
  EXPECT_EQ(wal->campaign_id, "kill-1");
  EXPECT_EQ(wal->spec_hash, "00000000deadbeef");
  EXPECT_EQ(wal->priority, 3);
  ASSERT_EQ(wal->sessions.size(), 2u);
  EXPECT_EQ(wal->sessions[0].index, 0u);
  EXPECT_TRUE(wal->sessions[0].has_key);
  EXPECT_EQ(wal->sessions[0].key, 0x1111u);
  EXPECT_EQ(wal->sessions[1].index, 2u);
  EXPECT_FALSE(wal->sessions[1].has_key);
  EXPECT_TRUE(wal->complete);
  EXPECT_EQ(wal->final_state, "finished");
}

TEST(CampaignWal, TornFinalLineIsDroppedNotFatal) {
  ScratchDir scratch("wal-torn");
  const fs::path path = scratch.path / "journal.wal";
  {
    CampaignWalWriter writer(path);
    writer.begin("kill-2", "0123456789abcdef", 0);
    writer.session(0, 0xaa, true);
    writer.session(1, 0xbb, true);
    writer.complete("finished");
  }

  // A damaged last line is a torn append: the record is dropped, the rest
  // of the journal is trusted — here the `complete` promise disappears and
  // the campaign reads as still in flight.
  const std::vector<std::string> good = wal_lines(path);
  std::vector<std::string> lines = good;
  lines.back() = corrupted(lines.back());
  write_wal_lines(path, lines);
  std::optional<CampaignWal> wal = load_campaign_wal(path);
  ASSERT_TRUE(wal.has_value());
  EXPECT_FALSE(wal->complete);
  EXPECT_EQ(wal->sessions.size(), 2u);

  // The writer dying mid-append leaves a checksum-less fragment: same story.
  write_wal_lines(path, good);
  std::ofstream(path, std::ios::app) << "session 2 00000000000000";
  wal = load_campaign_wal(path);
  ASSERT_TRUE(wal.has_value());
  EXPECT_TRUE(wal->complete);
  EXPECT_EQ(wal->sessions.size(), 2u);
}

TEST(CampaignWal, MidstreamDamagePoisonsTheWholeJournal) {
  ScratchDir scratch("wal-poison");
  const fs::path path = scratch.path / "journal.wal";
  {
    CampaignWalWriter writer(path);
    writer.begin("kill-3", "0123456789abcdef", 0);
    writer.session(0, 0xaa, true);
    writer.session(1, 0xbb, true);
  }
  const std::vector<std::string> good = wal_lines(path);

  // Damage before the last line cannot be a torn append — the journal is
  // rejected with a reason instead of half-trusted.
  for (const std::size_t victim : {std::size_t{0}, std::size_t{1}}) {
    std::vector<std::string> lines = good;
    lines[victim] = corrupted(lines[victim]);
    write_wal_lines(path, lines);
    std::string error;
    EXPECT_FALSE(load_campaign_wal(path, &error).has_value())
        << "line " << victim;
    EXPECT_FALSE(error.empty());
  }

  // A lone damaged header has nothing to fall back on.
  write_wal_lines(path, {corrupted(good[0])});
  EXPECT_FALSE(load_campaign_wal(path).has_value());

  // Empty and missing files are poisoned too, never "valid and empty".
  write_wal_lines(path, {});
  EXPECT_FALSE(load_campaign_wal(path).has_value());
  std::string error;
  EXPECT_FALSE(
      load_campaign_wal(scratch.path / "nonexistent.wal", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(CampaignWal, DuplicateSessionRecordsLastWins) {
  ScratchDir scratch("wal-dup");
  const fs::path path = scratch.path / "journal.wal";
  {
    CampaignWalWriter writer(path);
    writer.begin("kill-4", "0123456789abcdef", 0);
    writer.session(1, 0xaa, true);
    writer.session(1, 0xbb, true);  // a resumed campaign re-ran session 1
  }
  const std::optional<CampaignWal> wal = load_campaign_wal(path);
  ASSERT_TRUE(wal.has_value());
  ASSERT_EQ(wal->sessions.size(), 1u);
  EXPECT_EQ(wal->sessions[0].index, 1u);
  EXPECT_EQ(wal->sessions[0].key, 0xbbu);
}

// -------------------------------------------------- crash-kill harness ---

struct KillOutcome {
  bool killed = false;  ///< child died by signal (the fault point fired)
  int code = 0;         ///< signal number when killed, exit status otherwise
};

/// Fork a child that runs `spec` through a fresh SessionService on `root`
/// with EMUTILE_FAULT_POINT=`fault` set: the child either dies by SIGKILL at
/// the fault point or exits 42 (the fault's skip count outran the campaign —
/// the campaign simply finished).
KillOutcome run_campaign_to_kill(const fs::path& root, const std::string& spec,
                                 const std::string& fault) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::setenv("EMUTILE_FAULT_POINT", fault.c_str(), 1);
    try {
      SessionService service(service_config(root));
      static_cast<void>(service.submit_text(spec, 0, "kill"));
      service.drain();
    } catch (...) {
      ::_exit(43);
    }
    ::_exit(42);  // no destructors — the reports + WAL are already on disk
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (WIFSIGNALED(status)) return {true, WTERMSIG(status)};
  return {false, WEXITSTATUS(status)};
}

struct AttachOutcome {
  ReattachStats stats;
  std::string state;
  std::size_t replayed = 0;
  std::string json;
  std::string csv;
};

/// Restart side of the crash: attach to the surviving root, finish whatever
/// resumed, and return the (single) campaign's terminal state and report
/// bytes.
AttachOutcome attach_and_finish(const fs::path& root) {
  SessionService service(service_config(root));
  AttachOutcome out;
  out.stats = service.reattach();
  service.drain();
  const std::vector<CampaignStatus> all = service.list();
  EXPECT_EQ(all.size(), 1u);
  if (all.empty()) return out;
  out.state = to_string(all[0].state);
  out.replayed = all[0].replayed;
  out.json = read_file(all[0].out_dir / "report.json");
  out.csv = read_file(all[0].out_dir / "report.csv");
  return out;
}

const char* const kFaultPoints[] = {
    "cache.pre-store",      // before the session result reaches the cache
    "session.pre-wal",      // cached, not yet journaled
    "session.post-wal",     // journaled: replay must recover it for free
    "finalize.pre-report",  // all sessions journaled, no report yet
    "finalize.pre-complete"  // reports on disk, completion promise missing
};

TEST(Durability, SigkillAtEveryFaultPointRecoversByteIdentical) {
  if (!fault_points_compiled_in())
    GTEST_SKIP() << "fault points compiled out (Release build)";

  const std::string spec = small_spec_text(501);
  const CampaignReport direct = run_campaign(parse_campaign_spec(spec));
  const std::string ref_json = direct.to_json();
  const std::string ref_csv = direct.to_csv();

  for (const char* point : kFaultPoints) {
    ScratchDir scratch(std::string("kill-") + point);
    const KillOutcome kill = run_campaign_to_kill(scratch.path, spec, point);
    ASSERT_TRUE(kill.killed) << point << ": fault point never fired";
    EXPECT_EQ(kill.code, SIGKILL) << point;

    const AttachOutcome attached = attach_and_finish(scratch.path);
    EXPECT_EQ(attached.stats.resumed, 1u) << point;
    EXPECT_EQ(attached.stats.archived, 0u) << point;
    EXPECT_EQ(attached.state, "finished") << point;
    EXPECT_EQ(attached.json, ref_json)
        << point << ": resumed report diverged from a fresh run";
    EXPECT_EQ(test::diff_campaign_reports_csv(ref_csv, attached.csv), "")
        << point;

    // Past session.post-wal at least one session record hit the journal
    // before the kill — recovery must replay it from the cache instead of
    // re-executing it.
    const std::string name(point);
    if (name == "session.post-wal" || name.rfind("finalize.", 0) == 0) {
      EXPECT_GE(attached.replayed, 1u)
          << point << ": journaled sessions were re-executed";
    }
  }
}

TEST(Durability, RandomizedKillPointsReplayFromLoggedSeed) {
  if (!fault_points_compiled_in())
    GTEST_SKIP() << "fault points compiled out (Release build)";

  // Flake guard: the seed is logged on every run and honored from the
  // environment, so any CI failure replays exactly with
  // EMUTILE_KILL_SEED=<logged value>.
  std::uint64_t seed = 0;
  if (const char* env = std::getenv("EMUTILE_KILL_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  else
    seed = std::random_device{}();
  std::cout << "[ durability ] kill seed " << seed
            << " (replay with EMUTILE_KILL_SEED=" << seed << ")\n";
  RecordProperty("kill_seed", std::to_string(seed));
  std::mt19937_64 rng(seed);

  const std::string spec = small_spec_text(502);
  const CampaignReport direct = run_campaign(parse_campaign_spec(spec));
  const std::string ref_json = direct.to_json();
  const std::string ref_csv = direct.to_csv();

  for (int round = 0; round < 2; ++round) {
    const char* point = kFaultPoints[rng() % std::size(kFaultPoints)];
    const std::string fault =
        std::string(point) + ":" + std::to_string(rng() % 4);
    ScratchDir scratch("kill-rand-" + std::to_string(round));
    const KillOutcome kill = run_campaign_to_kill(scratch.path, spec, fault);
    // A skip count past the campaign's hit total means no crash — the child
    // finished cleanly and reattach re-registers the completed campaign.
    if (kill.killed)
      EXPECT_EQ(kill.code, SIGKILL) << fault << " seed " << seed;
    else
      EXPECT_EQ(kill.code, 42) << fault << " seed " << seed;

    const AttachOutcome attached = attach_and_finish(scratch.path);
    EXPECT_EQ(attached.stats.resumed + attached.stats.completed, 1u)
        << fault << " seed " << seed;
    EXPECT_EQ(attached.state, "finished") << fault << " seed " << seed;
    EXPECT_EQ(attached.json, ref_json) << fault << " seed " << seed;
    EXPECT_EQ(test::diff_campaign_reports_csv(ref_csv, attached.csv), "")
        << fault << " seed " << seed;
  }
}

// ------------------------------------------------------ restart hygiene ---

TEST(Durability, PoisonedJournalIsArchivedAndRerunCleanly) {
  ScratchDir scratch("poison-archive");
  const std::string spec = small_spec_text(503);
  std::string id;
  {
    SessionService service(service_config(scratch.path));
    id = service.submit_text(spec, 0, "victim");
    service.wait(id);
  }
  const fs::path wal_path = scratch.path / "out" / id / "journal.wal";
  std::vector<std::string> lines = wal_lines(wal_path);
  ASSERT_GE(lines.size(), 3u);
  lines[1] = corrupted(lines[1]);  // mid-file damage: poisoned, not torn
  write_wal_lines(wal_path, lines);

  SessionService service(service_config(scratch.path));
  const ReattachStats stats = service.reattach();
  EXPECT_EQ(stats.resumed, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.archived, 1u);
  EXPECT_EQ(stats.resubmitted, 1u)
      << "an archived dir with a readable spec must re-run, not vanish";
  EXPECT_TRUE(fs::exists(scratch.path / "out" / (id + ".stale")))
      << "the unvalidatable dir must be archived, not silently shadowed";
  EXPECT_TRUE(
      fs::exists(scratch.path / "out" / (id + ".stale") / "report.json"))
      << "archiving must preserve the old artifacts for forensics";

  service.drain();
  const std::vector<CampaignStatus> all = service.list();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].state, CampaignState::kFinished) << all[0].error;
  const CampaignReport direct = run_campaign(parse_campaign_spec(spec));
  EXPECT_EQ(read_file(all[0].out_dir / "report.json"), direct.to_json());
}

TEST(Durability, TruncatedJournalResumesAndReplaysJournaledSessions) {
  ScratchDir scratch("truncate-resume");
  const std::string spec = small_spec_text(504);
  std::string id;
  {
    SessionService service(service_config(scratch.path));
    id = service.submit_text(spec, 0, "cut");
    service.wait(id);
  }
  // Drop the completion record and tear the last session record in half —
  // the on-disk state of a daemon killed mid-append.
  const fs::path wal_path = scratch.path / "out" / id / "journal.wal";
  std::vector<std::string> lines = wal_lines(wal_path);
  ASSERT_GE(lines.size(), 4u);  // header + 4 sessions + complete
  lines.pop_back();             // complete
  const std::string torn = lines.back().substr(0, lines.back().size() / 2);
  lines.back() = torn;
  write_wal_lines(wal_path, lines);

  SessionService service(service_config(scratch.path));
  const ReattachStats stats = service.reattach();
  EXPECT_EQ(stats.resumed, 1u);
  EXPECT_EQ(stats.archived, 0u);
  service.drain();

  const auto status = service.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, CampaignState::kFinished) << status->error;
  EXPECT_GE(status->replayed, 1u)
      << "intact journal records must replay from the cache";
  const CampaignReport direct = run_campaign(parse_campaign_spec(spec));
  EXPECT_EQ(read_file(status->out_dir / "report.json"), direct.to_json());
  EXPECT_EQ(
      test::diff_campaign_reports_csv(direct.to_csv(),
                                      read_file(status->out_dir /
                                                "report.csv")),
      "");
}

TEST(Durability, OutputDirWithoutJournalIsArchivedNotShadowed) {
  ScratchDir scratch("stale-archive");
  const std::string spec = small_spec_text(505);

  // A journal-less survivor with a readable spec (e.g. written by a daemon
  // run with --no-wal) and one with garbage where the spec should be.
  fs::create_directories(scratch.path / "out" / "mystery");
  std::ofstream(scratch.path / "out" / "mystery" / "spec.txt")
      << serialize_campaign_spec(parse_campaign_spec(spec));
  fs::create_directories(scratch.path / "out" / "junk");
  std::ofstream(scratch.path / "out" / "junk" / "spec.txt") << "not a spec\n";

  SessionService service(service_config(scratch.path));
  const ReattachStats stats = service.reattach();
  EXPECT_EQ(stats.resumed, 0u);
  EXPECT_EQ(stats.archived, 2u);
  EXPECT_EQ(stats.resubmitted, 1u);
  EXPECT_TRUE(fs::exists(scratch.path / "out" / "mystery.stale" / "spec.txt"));
  EXPECT_TRUE(fs::exists(scratch.path / "out" / "junk.stale"));

  service.drain();
  const std::vector<CampaignStatus> all = service.list();
  ASSERT_EQ(all.size(), 1u);  // only the readable spec re-ran
  EXPECT_EQ(all[0].state, CampaignState::kFinished) << all[0].error;
  const CampaignReport direct = run_campaign(parse_campaign_spec(spec));
  EXPECT_EQ(read_file(all[0].out_dir / "report.json"), direct.to_json());

  // A second reattach skips the .stale archives and re-registers the
  // finished re-run instead of touching anything again.
  SessionService again(service_config(scratch.path));
  const ReattachStats second = again.reattach();
  EXPECT_EQ(second.archived, 0u) << "archives must not be archived again";
  EXPECT_EQ(second.completed, 1u);
}

// --------------------------------------------------- drain-for-handoff ---

TEST(Durability, DrainStopsAdmissionAndFinishesInFlightWork) {
  ScratchDir scratch("drain-handoff");
  ServiceConfig config = service_config(scratch.path);
  config.num_threads = 1;
  SessionService service(config);
  ServiceEndpoint endpoint(service, scratch.path / "serviced.sock");

  // Enough replicas that the drain lands while sessions are still running.
  const std::string slow = small_spec_text(506, /*replicas=*/6);
  const std::string id = service.submit_text(slow, 0, "inflight");

  const std::string reply =
      endpoint_request(endpoint.socket_path(), "DRAIN\n");
  EXPECT_EQ(reply.rfind("OK draining", 0), 0u) << reply;
  EXPECT_TRUE(service.draining());
  // Idempotent: a second DRAIN is a no-op acknowledgement.
  EXPECT_EQ(endpoint_request(endpoint.socket_path(), "DRAIN\n")
                .rfind("OK draining", 0),
            0u);

  // New work is shed with the distinguished `ERR draining` token on every
  // admission path; the coordinator switches on the ServiceError code to
  // route elsewhere.
  EXPECT_THROW(static_cast<void>(service.submit_text(small_spec_text(507))),
               ServiceBusyError);
  std::ostringstream submit;
  submit << "SUBMIT 0 late\n" << small_spec_text(507);
  const std::string shed =
      endpoint_request(endpoint.socket_path(), submit.str());
  EXPECT_EQ(shed.rfind("ERR draining", 0), 0u) << shed;

  // Spooled specs stay put for the successor daemon — busy means "later",
  // never "rejected".
  std::ofstream(scratch.path / "spool" / "patient.spec")
      << small_spec_text(508);
  EXPECT_EQ(service.poll_spool(), 0u);
  EXPECT_TRUE(fs::exists(scratch.path / "spool" / "patient.spec"));

  // STATUS advertises the drain so supervisors take the instance out of
  // rotation while still collecting its in-flight shards.
  const std::string status =
      endpoint_request(endpoint.socket_path(), "STATUS " + id + "\n");
  EXPECT_NE(status.find(" draining=1"), std::string::npos) << status;
  const ServiceClient client(endpoint.socket_path());
  EXPECT_TRUE(client.status(id).daemon_draining);

  // The in-flight campaign still finishes — drain never abandons work.
  service.drain();
  const auto final_status = service.status(id);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ(final_status->state, CampaignState::kFinished)
      << final_status->error;
  EXPECT_EQ(final_status->sessions_done, final_status->sessions_total);
  const CampaignReport direct = run_campaign(parse_campaign_spec(slow));
  EXPECT_EQ(read_file(final_status->out_dir / "report.json"),
            direct.to_json());
}

}  // namespace
}  // namespace emutile
