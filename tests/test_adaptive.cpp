// Statistical test tier: interval estimators against closed-form values
// (Wilson score, Student-t, inverse normal), and the adaptive replica
// allocation driver end-to-end — a fixed-seed proof that confidence-driven
// budgets reach a target max half-width with strictly fewer sessions than
// the uniform grid, byte-identical reports across worker counts, and the
// service- and coordinator-backed round executors landing on the exact
// bytes of the in-process driver.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "campaign/adaptive_driver.hpp"
#include "campaign/campaign_engine.hpp"
#include "orchestrator/campaign_coordinator.hpp"
#include "service/session_service.hpp"
#include "util/stats.hpp"
#include "test_helpers.hpp"

namespace emutile {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name) {
    path = fs::path(::testing::TempDir()) / ("emutile-" + name);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// ---------------------------------------------------------- estimators ------

TEST(IntervalEstimators, NormalQuantileMatchesTables) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.95), 1.644854, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  // Symmetry and the tail branch of the approximation.
  EXPECT_NEAR(normal_quantile(0.025), -normal_quantile(0.975), 1e-9);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232, 1e-5);
  EXPECT_THROW(static_cast<void>(normal_quantile(0.0)), CheckError);
  EXPECT_THROW(static_cast<void>(normal_quantile(1.0)), CheckError);
}

TEST(IntervalEstimators, StudentTQuantileMatchesTables) {
  // Exact closed forms.
  EXPECT_NEAR(student_t_quantile(1, 0.975), 12.7062, 1e-3);
  EXPECT_NEAR(student_t_quantile(2, 0.975), 4.30265, 1e-4);
  // Cornish–Fisher regime against the standard t-table.
  EXPECT_NEAR(student_t_quantile(5, 0.975), 2.57058, 5e-3);
  EXPECT_NEAR(student_t_quantile(10, 0.975), 2.22814, 1e-3);
  EXPECT_NEAR(student_t_quantile(30, 0.975), 2.04227, 1e-4);
  EXPECT_NEAR(student_t_quantile(120, 0.975), 1.97993, 1e-5);
  EXPECT_NEAR(student_t_quantile(10, 0.95), 1.81246, 1e-3);
  // Converges to the normal quantile as df grows.
  EXPECT_NEAR(student_t_quantile(100000, 0.975), normal_quantile(0.975),
              1e-4);
  // Symmetric about the median.
  EXPECT_NEAR(student_t_quantile(7, 0.1), -student_t_quantile(7, 0.9), 1e-9);
  EXPECT_THROW(static_cast<void>(student_t_quantile(0, 0.9)), CheckError);
}

TEST(IntervalEstimators, WilsonIntervalMatchesClosedForm) {
  // 8 successes in 10 trials at 95%: the textbook Wilson interval.
  const Interval i = wilson_interval(8, 10);
  EXPECT_NEAR(i.lo, 0.4902, 1e-3);
  EXPECT_NEAR(i.hi, 0.9433, 1e-3);
  EXPECT_NEAR(i.half_width(), 0.2266, 1e-3);

  // Degenerate proportions stay inside [0, 1] (the reason Wilson, not Wald).
  const Interval all = wilson_interval(20, 20);
  EXPECT_GT(all.lo, 0.8);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const Interval none = wilson_interval(0, 20);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.2);

  // Zero trials: the whole of [0, 1] — the widest a proportion gets.
  const Interval unknown = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(unknown.lo, 0.0);
  EXPECT_DOUBLE_EQ(unknown.hi, 1.0);
  EXPECT_DOUBLE_EQ(unknown.half_width(), 0.5);

  // Width shrinks with the sample at fixed p-hat.
  EXPECT_LT(wilson_interval(80, 100).half_width(),
            wilson_interval(8, 10).half_width());
  EXPECT_THROW(static_cast<void>(wilson_interval(3, 2)), CheckError);
}

TEST(IntervalEstimators, MeanIntervalMatchesClosedForm) {
  // Sample 1..10: mean 5.5, sd sqrt(110/12) = 3.02765, t(9, .975) = 2.26216,
  // half-width 2.16645.
  Accumulator acc;
  for (int x = 1; x <= 10; ++x) acc.add(static_cast<double>(x));
  const Interval i = mean_interval(acc);
  EXPECT_NEAR(i.lo, 5.5 - 2.16645, 5e-3);
  EXPECT_NEAR(i.hi, 5.5 + 2.16645, 5e-3);

  // Below two samples there is no variance information.
  Accumulator one;
  one.add(42.0);
  EXPECT_TRUE(std::isinf(mean_interval(one).half_width()));
  EXPECT_TRUE(std::isinf(mean_interval(Accumulator{}).half_width()));
}

TEST(IntervalEstimators, ScenarioAccessorsDeriveFromCounters) {
  ScenarioStats s;
  s.sessions = 12;
  s.failed = 1;
  s.cancelled = 1;  // completed() == 10
  s.detected = 8;
  s.clean = 6;
  EXPECT_EQ(s.completed(), 10u);
  const Interval det = s.detection_interval();
  const Interval ref = wilson_interval(8, 10);
  EXPECT_DOUBLE_EQ(det.lo, ref.lo);
  EXPECT_DOUBLE_EQ(det.hi, ref.hi);
  const Interval corr = s.correction_interval();
  const Interval corr_ref = wilson_interval(6, 8);
  EXPECT_DOUBLE_EQ(corr.lo, corr_ref.lo);
  EXPECT_DOUBLE_EQ(corr.hi, corr_ref.hi);
  EXPECT_TRUE(std::isinf(s.debug_work_interval().half_width()));
}

// ------------------------------------------------------- adaptive driver ----

/// One 55-LUT design, two error kinds with distinctly different detection
/// rates at 48 patterns (lut-function misses often, wrong-polarity almost
/// never) — the skew adaptive allocation exists to exploit.
CampaignSpec adaptive_spec(int sessions_per_scenario) {
  CampaignSpec spec;
  spec.add_design("rand-b", [](std::uint64_t s) {
    return test::make_random_netlist(55, s);
  });
  spec.error_kinds = {ErrorKind::kLutFunction, ErrorKind::kWrongPolarity};
  spec.sessions_per_scenario = sessions_per_scenario;
  spec.master_seed = 2026;
  spec.num_patterns = 48;
  spec.tilings[0].num_tiles = 6;
  spec.tilings[0].target_overhead = 0.3;
  return spec;
}

TEST(AdaptiveDriver, ReachesTargetHalfwidthWithFewerSessionsThanUniform) {
  // The uniform baseline: 18 replicas per scenario, and the max detection
  // half-width it lands on is the target the adaptive run must match.
  const CampaignSpec base = adaptive_spec(18);
  CampaignOptions engine;
  engine.num_threads = 4;
  const CampaignReport uniform = run_campaign(base, engine);
  ASSERT_EQ(uniform.sessions, 36u);
  double uniform_halfwidth = 0.0;
  for (const ScenarioStats& s : uniform.scenarios)
    uniform_halfwidth = std::max(
        uniform_halfwidth, AdaptiveCampaignDriver::scenario_halfwidth(
                               s, AdaptiveMetric::kDetection, 0.95));
  ASSERT_GT(uniform_halfwidth, 0.0);
  ASSERT_LT(uniform_halfwidth, 0.5);

  AdaptiveOptions options;
  options.target_halfwidth = uniform_halfwidth;
  options.initial_sessions = 5;
  options.round_budget = 4;
  options.engine = engine;
  // Wrap the default executor to capture the exploratory round's report.
  std::vector<CampaignReport> rounds;
  options.executor = [&](const CampaignSpec& round_spec, std::size_t) {
    CampaignReport r = run_campaign(round_spec, engine);
    rounds.push_back(r);
    return r;
  };
  AdaptiveCampaignDriver driver(options);
  const AdaptiveResult result = driver.run(base);

  // The acceptance bar: same (or tighter) max half-width, strictly fewer
  // sessions than the flat grid spent.
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.max_halfwidth, uniform_halfwidth);
  EXPECT_LT(result.total_sessions, uniform.sessions);
  EXPECT_EQ(result.total_sessions,
            static_cast<std::size_t>(result.report.sessions));
  ASSERT_EQ(result.round_log.size(), result.rounds);
  EXPECT_EQ(result.round_log.back().scenarios_above_target, 0u);

  // The budget went where the uncertainty was: the wide (lut-function)
  // scenario got more replicas than the narrow (wrong-polarity) one.
  ASSERT_EQ(result.report.scenarios.size(), 2u);
  EXPECT_GT(result.report.scenarios[0].sessions,
            result.report.scenarios[1].sessions);

  // Superset contract, executor-level: the exploratory round is the very
  // uniform campaign of initial_sessions replicas — byte-identical report —
  // because replica streams are per-scenario, not per-position.
  ASSERT_FALSE(rounds.empty());
  const CampaignReport uniform_initial =
      run_campaign(adaptive_spec(options.initial_sessions), engine);
  EXPECT_EQ(rounds[0].to_csv(), uniform_initial.to_csv());
  EXPECT_EQ(rounds[0].to_json(), uniform_initial.to_json());
}

TEST(AdaptiveDriver, ReportsAreByteIdenticalAcross1AndNThreads) {
  const CampaignSpec base = adaptive_spec(8);
  AdaptiveOptions options;
  options.target_halfwidth = 0.28;
  options.initial_sessions = 3;
  options.round_budget = 2;

  std::string csv_ref, json_ref;
  std::vector<AdaptiveRoundInfo> log_ref;
  for (const std::size_t threads : {1u, 4u}) {
    options.engine.num_threads = threads;
    AdaptiveCampaignDriver driver(options);
    const AdaptiveResult result = driver.run(base);
    EXPECT_GT(result.rounds, 0u);
    if (csv_ref.empty()) {
      csv_ref = result.report.to_csv();
      json_ref = result.report.to_json();
      log_ref = result.round_log;
    } else {
      // Same allocation decisions, same sessions, same bytes.
      EXPECT_EQ(result.report.to_csv(), csv_ref);
      EXPECT_EQ(result.report.to_json(), json_ref);
      ASSERT_EQ(result.round_log.size(), log_ref.size());
      for (std::size_t i = 0; i < log_ref.size(); ++i) {
        EXPECT_EQ(result.round_log[i].sessions, log_ref[i].sessions);
        EXPECT_DOUBLE_EQ(result.round_log[i].max_halfwidth,
                         log_ref[i].max_halfwidth);
      }
    }
  }
}

/// A tiny catalog campaign (wire-format-serializable, so it can travel to a
/// service or a fleet): one design, one error kind, quick convergence.
CampaignSpec catalog_adaptive_spec() {
  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.error_kinds = {ErrorKind::kWrongPolarity};
  spec.sessions_per_scenario = 10;  // the uniform reference budget
  spec.master_seed = 77;
  spec.num_patterns = 64;
  spec.tilings[0].num_tiles = 6;
  spec.tilings[0].target_overhead = 0.3;
  return spec;
}

AdaptiveOptions catalog_adaptive_options() {
  AdaptiveOptions options;
  options.target_halfwidth = 0.22;
  options.initial_sessions = 3;
  options.round_budget = 2;
  options.engine.num_threads = 2;
  return options;
}

TEST(AdaptiveDriver, ServiceBackedRoundsMatchInProcessBytes) {
  const CampaignSpec base = catalog_adaptive_spec();
  AdaptiveOptions options = catalog_adaptive_options();
  AdaptiveCampaignDriver in_process(options);
  const AdaptiveResult direct = in_process.run(base);

  ScratchDir scratch("adaptive-service");
  ServiceConfig config;
  config.root = scratch.path;
  config.num_threads = 2;
  config.snapshot_every = 0;
  SessionService service(config);
  options.executor = make_adaptive_executor(service);
  AdaptiveCampaignDriver via_service(options);
  const AdaptiveResult remote = via_service.run(base);

  EXPECT_EQ(remote.rounds, direct.rounds);
  EXPECT_EQ(remote.total_sessions, direct.total_sessions);
  EXPECT_EQ(remote.converged, direct.converged);
  EXPECT_EQ(remote.report.to_csv(), direct.report.to_csv());
  EXPECT_EQ(remote.report.to_json(), direct.report.to_json());

  // Re-running the whole adaptive campaign against the now-warm service
  // cache re-submits the same scenarios nearly for free: every session is
  // a cache hit.
  AdaptiveCampaignDriver again(options);
  const AdaptiveResult warm = again.run(base);
  EXPECT_EQ(warm.report.to_csv(), direct.report.to_csv());
  EXPECT_EQ(warm.report.cache_hits, warm.total_sessions);
  EXPECT_EQ(warm.report.cache_misses, 0u);
}

TEST(AdaptiveDriver, CoordinatorBackedRoundsMatchInProcessBytes) {
  const CampaignSpec base = catalog_adaptive_spec();
  AdaptiveOptions options = catalog_adaptive_options();
  AdaptiveCampaignDriver in_process(options);
  const AdaptiveResult direct = in_process.run(base);

  // An empty fleet exercises the coordinator's in-process fallback — the
  // degradation path must still produce the exact adaptive bytes.
  FleetConfig fleet;
  CoordinatorOptions coordinator_options;
  coordinator_options.local_threads = 2;
  CampaignCoordinator coordinator(fleet, coordinator_options);
  options.executor = make_adaptive_executor(coordinator);
  AdaptiveCampaignDriver via_fleet(options);
  const AdaptiveResult result = via_fleet.run(base);

  EXPECT_EQ(result.rounds, direct.rounds);
  EXPECT_EQ(result.total_sessions, direct.total_sessions);
  EXPECT_EQ(result.report.to_csv(), direct.report.to_csv());
  EXPECT_EQ(result.report.to_json(), direct.report.to_json());
}

TEST(AdaptiveDriver, RejectsSpecsItCannotOwn) {
  AdaptiveCampaignDriver driver;
  CampaignSpec sharded = adaptive_spec(4).shard(0, 2);
  EXPECT_THROW(static_cast<void>(driver.run(sharded)), CheckError);
  CampaignSpec budgeted = adaptive_spec(4);
  budgeted.sessions_by_scenario = {1, 1};
  EXPECT_THROW(static_cast<void>(driver.run(budgeted)), CheckError);
  CampaignSpec empty;  // no designs -> no scenarios
  EXPECT_THROW(static_cast<void>(driver.run(empty)), CheckError);
  AdaptiveOptions bad;
  bad.target_halfwidth = 0.0;
  AdaptiveCampaignDriver bad_driver(bad);
  EXPECT_THROW(static_cast<void>(bad_driver.run(adaptive_spec(4))),
               CheckError);
}

}  // namespace
}  // namespace emutile
