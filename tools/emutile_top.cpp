/// emutile_top — live fleet console for emutile_serviced instances.
///
/// Polls every socket instance of a fleet config (STATUS via LIST, METRICS,
/// CACHE, TRACESPANS) on a refresh loop and renders one screen per tick:
/// per-instance campaign counts, scheduler queue depth, cache hit rate,
/// request-latency p50/p99, slow-request count — plus the slowest open
/// spans fleet-wide (what each instance is doing *right now*). Spool
/// instances have no live protocol and show as such. A dead instance shows
/// as down and never stalls the loop.
///
///   $ emutile_top --fleet FLEET.cfg [--interval-ms N] [--iterations N]
///                 [--timeout-ms N] [--no-clear]
///
///   --interval-ms N   refresh cadence (default 2000)
///   --iterations N    stop after N refreshes (default 0 = run until ^C;
///                     scripts and CI use 1 for a single snapshot)
///   --timeout-ms N    per-request receive timeout (default 5000)
///   --no-clear        append screens instead of ANSI-clearing between them

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orchestrator/fleet_config_io.hpp"
#include "service/service_client.hpp"
#include "util/log.hpp"

using namespace emutile;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --fleet FLEET.cfg [--interval-ms N] [--iterations N]"
               " [--timeout-ms N] [--no-clear]\n";
  return 2;
}

/// What one poll of one instance yielded.
struct InstanceView {
  const FleetInstance* config = nullptr;
  bool reachable = false;
  std::string error;            ///< why unreachable (first line)
  std::size_t queued = 0;       ///< campaigns in queued state
  std::size_t running = 0;      ///< campaigns in running state
  std::size_t finished = 0;     ///< terminal campaigns (any kind)
  MetricsSnapshot metrics;
  std::vector<TraceSpan> open_spans;
};

/// Count campaign states from a LIST reply: `OK <count>` then one
/// `<id> <state> <done>/<total> ...` line per campaign.
void count_campaigns(const std::string& list_reply, InstanceView& view) {
  std::istringstream in(list_reply);
  std::string line;
  std::getline(in, line);  // the OK header
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string id, state;
    if (!(fields >> id >> state)) continue;
    if (state == "queued") ++view.queued;
    else if (state == "running") ++view.running;
    else ++view.finished;
  }
}

InstanceView poll_instance(const FleetInstance& instance, int timeout_ms) {
  InstanceView view;
  view.config = &instance;
  if (!instance.address.is_wire()) return view;
  const ServiceClient client(instance.address, timeout_ms);
  try {
    count_campaigns(client.list(), view);
    view.metrics = parse_metrics_text(client.fetch_metrics());
    view.open_spans = client.fetch_trace_spans().spans;
    view.open_spans.erase(
        std::remove_if(view.open_spans.begin(), view.open_spans.end(),
                       [](const TraceSpan& s) { return !s.open; }),
        view.open_spans.end());
    view.reachable = true;
  } catch (const std::exception& e) {
    view.error = e.what();
    const std::size_t eol = view.error.find('\n');
    if (eol != std::string::npos) view.error.resize(eol);
  }
  return view;
}

std::uint64_t counter_of(const MetricsSnapshot& snap, const char* name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

std::int64_t gauge_of(const MetricsSnapshot& snap, const char* name) {
  const auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0 : it->second;
}

/// All `endpoint.request_us.<CMD>` series folded into one distribution, so
/// the latency column reflects the instance's whole request mix.
HistogramSnapshot merged_request_latency(const MetricsSnapshot& snap) {
  HistogramSnapshot merged;
  for (const auto& [name, hist] : snap.histograms)
    if (name.rfind("endpoint.request_us.", 0) == 0) merged.merge(hist);
  return merged;
}

std::string format_ms(std::uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", static_cast<double>(us) / 1000.0);
  return buf;
}

std::string format_hit_rate(std::uint64_t hits, std::uint64_t misses) {
  if (hits + misses == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses));
  return buf;
}

void render(const std::vector<InstanceView>& views, std::size_t tick) {
  std::ostringstream out;
  out << "emutile fleet — refresh " << tick << ", " << views.size()
      << " instance(s)\n\n";
  out << "  instance         state  campaigns q/r/done  queue  active"
         "  cache  req p50/p99 ms  slow\n";
  for (const InstanceView& view : views) {
    char line[160];
    if (!view.config->address.is_wire()) {
      std::snprintf(line, sizeof line, "  %-16s %-6s spool (no live stats)",
                    view.config->name.c_str(), "spool");
      out << line << "\n";
      continue;
    }
    if (!view.reachable) {
      std::snprintf(line, sizeof line, "  %-16s %-6s %s",
                    view.config->name.c_str(), "down",
                    view.error.empty() ? "(no reply)" : view.error.c_str());
      out << line << "\n";
      continue;
    }
    const HistogramSnapshot latency = merged_request_latency(view.metrics);
    const std::string p50 = format_ms(latency.quantile(0.50));
    const std::string p99 = format_ms(latency.quantile(0.99));
    const std::string hit_rate =
        format_hit_rate(counter_of(view.metrics, "result_cache.hits"),
                        counter_of(view.metrics, "result_cache.misses"));
    std::snprintf(
        line, sizeof line,
        "  %-16s %-6s %4zu/%zu/%-10zu %5lld %7lld  %5s  %7s/%-7s %4llu",
        view.config->name.c_str(), "up", view.queued, view.running,
        view.finished,
        static_cast<long long>(
            gauge_of(view.metrics, "scheduler.queue_depth")),
        static_cast<long long>(
            gauge_of(view.metrics, "service.campaigns_active")),
        hit_rate.c_str(), p50.c_str(), p99.c_str(),
        static_cast<unsigned long long>(
            counter_of(view.metrics, "endpoint.slow_requests")));
    out << line << "\n";
  }

  // The slowest work currently in flight anywhere in the fleet.
  struct OpenEntry {
    const TraceSpan* span;
    const std::string* instance;
  };
  std::vector<OpenEntry> open;
  for (const InstanceView& view : views)
    for (const TraceSpan& span : view.open_spans)
      open.push_back({&span, &view.config->name});
  std::sort(open.begin(), open.end(), [](const OpenEntry& a,
                                         const OpenEntry& b) {
    return a.span->dur_us > b.span->dur_us;
  });
  out << "\n  slowest open spans:\n";
  if (open.empty()) out << "    (none)\n";
  for (std::size_t i = 0; i < open.size() && i < 5; ++i) {
    char line[160];
    std::snprintf(line, sizeof line, "    %10s ms  %-28s @ %s",
                  format_ms(open[i].span->dur_us).c_str(),
                  open[i].span->name.c_str(), open[i].instance->c_str());
    out << line << "\n";
  }
  std::cout << out.str() << std::flush;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path fleet_path;
  long interval_ms = 2000;
  std::size_t iterations = 0;
  int timeout_ms = 5000;
  bool clear_screen = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--fleet") fleet_path = value();
    else if (arg == "--interval-ms") interval_ms = std::strtol(value(), nullptr, 10);
    else if (arg == "--iterations") iterations = std::strtoull(value(), nullptr, 10);
    else if (arg == "--timeout-ms") timeout_ms = static_cast<int>(std::strtol(value(), nullptr, 10));
    else if (arg == "--no-clear") clear_screen = false;
    else return usage(argv[0]);
  }
  if (fleet_path.empty()) return usage(argv[0]);
  set_log_threshold(LogLevel::kWarn);

  try {
    const FleetConfig fleet = load_fleet_config_file(fleet_path);
    for (std::size_t tick = 1; iterations == 0 || tick <= iterations;
         ++tick) {
      std::vector<InstanceView> views;
      views.reserve(fleet.instances.size());
      for (const FleetInstance& instance : fleet.instances)
        views.push_back(poll_instance(instance, timeout_ms));
      if (clear_screen) std::cout << "\x1b[2J\x1b[H";
      render(views, tick);
      if (iterations != 0 && tick == iterations) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const std::exception& e) {
    std::cerr << "emutile_top: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
