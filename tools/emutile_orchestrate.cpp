/// emutile_orchestrate — fan one campaign spec out across a fleet of
/// serviced instances and merge the shard reports.
///
/// Reads a fleet config (see fleet_config_io.hpp), shards the spec across
/// the instances, supervises the shards (re-dispatching on instance failure,
/// stall, or rejection; falling back to in-process execution when the whole
/// fleet is down), and writes a merged report byte-identical to a direct
/// unsharded run_campaign of the same spec.
///
///   $ emutile_orchestrate --fleet FLEET.cfg --spec SPEC [--out DIR]
///                         [--shards N] [--priority N] [--poll-ms N]
///                         [--stall-ms N] [--timeout-ms N]
///                         [--local-threads N] [--no-local-fallback]
///                         [--no-steal] [--control ADDR]
///                         [--adaptive] [--target-halfwidth X]
///                         [--initial-sessions N] [--max-sessions N]
///                         [--metric detection|correction|debug-work]
///                         [--quiet]
///
/// The fleet is elastic mid-campaign: editing FLEET.cfg (or sending the
/// process SIGHUP to force a re-read) joins newly-listed instances into the
/// running campaign and retires missing ones; `--control ADDR` additionally
/// listens on a unix:/tcp: address for `FLEET` requests (send a new fleet
/// config after the FLEET line to apply it; bare FLEET reads the current
/// membership back). Idle instances pick up work stolen from the slowest
/// in-flight shard unless --no-steal is given; every placement prefers the
/// instance whose caches already hold the shard's sessions.
///
/// --adaptive runs the campaign in confidence-driven rounds (see
/// adaptive_driver.hpp): a uniform exploratory round of --initial-sessions
/// per scenario, then follow-up rounds orchestrated across the fleet as
/// extra shards, spending sessions on the scenarios whose --metric interval
/// is widest until every half-width is at or below --target-halfwidth or
/// --max-sessions (default: the spec's own uniform budget) runs out.
///
/// Writes <out>/report.json, <out>/report.csv, and <out>/report.shard
/// (the mergeable form) — default out dir is the current directory. A
/// non-adaptive run also writes <out>/fleet_metrics.txt + .json (the merged
/// per-instance metrics registries; sums of the instance series),
/// <out>/fleet_trace.json (the run's stitched fleet trace in Chrome
/// trace-event JSON — load it in Perfetto), and streams an
/// <out>/events.jsonl journal of dispatch/retry/collect records. The
/// report artifacts stay deterministic; metrics, trace, and journal are
/// observability sidecars.

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "campaign/adaptive_driver.hpp"
#include "campaign/campaign_report_io.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "obs/trace_io.hpp"
#include "orchestrator/campaign_coordinator.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"

using namespace emutile;

namespace {

// SIGHUP = re-read the fleet file now (the coordinator also watches its
// mtime, but a signal beats waiting out a coarse filesystem timestamp).
std::atomic<bool> g_reload{false};
void on_sighup(int) { g_reload.store(true); }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --fleet FLEET.cfg --spec SPEC [--out DIR] [--shards N]"
               " [--priority N] [--poll-ms N] [--stall-ms N] [--timeout-ms N]"
               " [--local-threads N] [--no-local-fallback] [--no-steal]"
               " [--control ADDR] [--adaptive]"
               " [--target-halfwidth X] [--initial-sessions N]"
               " [--max-sessions N]"
               " [--metric detection|correction|debug-work] [--quiet]\n";
  return 2;
}

void print_snapshot(const FleetSnapshot& snap) {
  std::cout << "fleet: " << snap.shards_done << "/" << snap.shards.size()
            << " shards done, " << snap.sessions_done << "/"
            << snap.sessions_total << " sessions, " << snap.healthy_instances
            << "/" << snap.total_instances << " instances healthy |";
  for (const ShardProgress& shard : snap.shards)
    std::cout << " s" << shard.shard << "=" << to_string(shard.state) << "@"
              << (shard.instance.empty() ? "-" : shard.instance) << ":"
              << shard.sessions_done << "/" << shard.sessions_total;
  std::cout << std::endl;  // flush: progress must survive a crash right after
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path fleet_path, spec_path, out_dir = ".";
  CoordinatorOptions options;
  AdaptiveOptions adaptive;
  bool use_adaptive = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--fleet") fleet_path = value();
    else if (arg == "--spec") spec_path = value();
    else if (arg == "--out") out_dir = value();
    else if (arg == "--shards") options.num_shards = std::strtoull(value(), nullptr, 10);
    else if (arg == "--priority") options.priority = std::atoi(value());
    else if (arg == "--poll-ms") options.poll_interval = std::chrono::milliseconds(std::strtol(value(), nullptr, 10));
    else if (arg == "--stall-ms") options.stall_deadline = std::chrono::milliseconds(std::strtol(value(), nullptr, 10));
    else if (arg == "--timeout-ms") options.request_timeout_ms = static_cast<int>(std::strtol(value(), nullptr, 10));
    else if (arg == "--local-threads") options.local_threads = std::strtoull(value(), nullptr, 10);
    else if (arg == "--no-local-fallback") options.allow_local_fallback = false;
    else if (arg == "--no-steal") options.enable_stealing = false;
    else if (arg == "--control") options.control_address = parse_service_address(value());
    else if (arg == "--adaptive") use_adaptive = true;
    else if (arg == "--target-halfwidth") adaptive.target_halfwidth = std::strtod(value(), nullptr);
    else if (arg == "--initial-sessions") adaptive.initial_sessions = std::atoi(value());
    else if (arg == "--max-sessions") adaptive.max_total_sessions = std::strtoull(value(), nullptr, 10);
    else if (arg == "--metric") {
      const std::string metric = value();
      if (metric == "detection") adaptive.metric = AdaptiveMetric::kDetection;
      else if (metric == "correction") adaptive.metric = AdaptiveMetric::kCorrection;
      else if (metric == "debug-work") adaptive.metric = AdaptiveMetric::kDebugWork;
      else return usage(argv[0]);
    }
    else if (arg == "--quiet") quiet = true;
    else return usage(argv[0]);
  }
  if (fleet_path.empty() || spec_path.empty()) return usage(argv[0]);
  set_log_threshold(LogLevel::kWarn);
  std::signal(SIGHUP, on_sighup);

  try {
    const FleetConfig fleet = load_fleet_config_file(fleet_path);
    const CampaignSpec spec = load_campaign_spec_file(spec_path);
    // Elasticity: watch the fleet file for membership changes mid-campaign.
    options.fleet_file = fleet_path;
    options.reload_flag = &g_reload;
    if (!quiet) {
      std::cout << "fleet (" << fleet.instances.size() << " instances):\n";
      for (const FleetInstance& instance : fleet.instances)
        std::cout << "  " << instance.name << " "
                  << instance.address.to_string() << "\n";
      options.on_snapshot = print_snapshot;
    }

    // One trace for the whole invocation: every shard dispatch, remote
    // campaign, and session span hangs off this id, and the journal stamps
    // it on each record.
    options.trace = Tracer::global().mint_trace();

    // The journal and metrics sidecars live next to the reports; create the
    // out dir up front so the journal can open.
    std::filesystem::create_directories(out_dir);
    EventJournal journal(out_dir / "events.jsonl",
                         spec_path.stem().string(),
                         options.trace.valid()
                             ? format_u64_hex(options.trace.trace_id)
                             : "");
    options.journal = &journal;

    CampaignCoordinator coordinator(fleet, options);
    CampaignReport report;
    MetricsSnapshot fleet_metrics;
    std::size_t metrics_instances = 0;
    std::vector<TraceSpan> fleet_trace;
    std::size_t trace_instances = 0;
    if (use_adaptive) {
      adaptive.executor = make_adaptive_executor(coordinator);
      if (!quiet) {
        adaptive.on_round = [&](const AdaptiveRoundInfo& info) {
          std::cout << "adaptive round " << info.round << ": "
                    << info.sessions << " sessions ("
                    << info.total_sessions << " total), max "
                    << to_string(adaptive.metric) << " half-width "
                    << info.max_halfwidth << ", "
                    << info.scenarios_above_target
                    << " scenario(s) above target" << std::endl;
        };
      }
      AdaptiveCampaignDriver driver(adaptive);
      AdaptiveResult result = driver.run(spec);
      report = std::move(result.report);
      std::cout << "adaptive campaign "
                << (result.converged ? "converged" : "stopped") << " after "
                << result.rounds << " round(s), " << result.total_sessions
                << "/" << spec.num_sessions()
                << " sessions of the uniform budget, max half-width "
                << result.max_halfwidth << "\n";
    } else {
      OrchestrationResult result = coordinator.run(spec);
      report = std::move(result.report);
      fleet_metrics = std::move(result.fleet_metrics);
      metrics_instances = result.metrics_instances;
      fleet_trace = std::move(result.fleet_trace);
      trace_instances = result.trace_instances;
      std::cout << "orchestrated " << result.num_shards << " shard"
                << (result.num_shards == 1 ? "" : "s") << " ("
                << result.redispatches << " re-dispatched, "
                << result.steals << " stolen, "
                << result.affinity_dispatches << " affinity-placed, "
                << result.joined_instances << " joined, "
                << result.local_shards << " ran locally)\n";
    }

    write_file_atomic(out_dir / "report.json", report.to_json());
    write_file_atomic(out_dir / "report.csv", report.to_csv());
    write_file_atomic(out_dir / "report.shard",
                      serialize_campaign_report(report));
    if (!fleet_metrics.empty()) {
      write_file_atomic(out_dir / "fleet_metrics.txt", fleet_metrics.to_text());
      write_file_atomic(out_dir / "fleet_metrics.json",
                        fleet_metrics.to_json());
      std::cout << "fleet metrics merged from " << metrics_instances
                << " instance(s)\n";
    }
    if (!fleet_trace.empty()) {
      write_file_atomic(out_dir / "fleet_trace.json",
                        trace_events_json(fleet_trace));
      std::cout << "fleet trace: " << fleet_trace.size() << " span(s) from "
                << trace_instances << " instance(s), trace id "
                << format_u64_hex(options.trace.trace_id) << "\n";
    }

    report.print_summary(std::cout);
    std::cout << "reports written to " << out_dir.string() << "\n";
  } catch (const std::exception& e) {
    std::cerr << "emutile_orchestrate: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
