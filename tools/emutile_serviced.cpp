/// emutile_serviced — the campaign session daemon.
///
/// Runs a resident SessionService: polls the spool directory for submitted
/// campaign specs, serves the Unix-socket control endpoint, and streams
/// snapshots/reports under <root>/out/. Stops on SIGINT/SIGTERM, on a
/// SHUTDOWN request over the socket, or when a file named <root>/stop
/// appears (handy for scripted orchestration); in-flight campaigns are
/// drained before exit unless --no-drain is given.
///
/// Durability: `--attach` re-attaches to the root a previous daemon left
/// behind — unfinished campaigns (valid out/<id>/journal.wal) resume
/// mid-stream, completed ones answer STATUS/WAIT again, unvalidatable dirs
/// are archived to out/<id>.stale. SIGUSR2 (or the DRAIN wire command)
/// begins a drain: no new admissions, in-flight campaigns finish or
/// journal, then the daemon exits 0 — the rolling-upgrade handoff.
///
///   $ emutile_serviced --root DIR [--attach] [--threads N]
///                      [--snapshot-every N]
///                      [--poll-ms N] [--no-cache] [--cache-max-bytes N]
///                      [--baseline-cache-entries N] [--no-socket]
///                      [--socket PATH] [--tcp HOST:PORT]
///                      [--max-pending N] [--quota N]
///                      [--deadline-default-ms N] [--intake-capacity N]
///                      [--endpoint reactor|legacy] [--endpoint-workers N]
///                      [--once] [--no-drain] [--no-journal] [--no-wal]
///                      [--slow-request-ms N] [--slow-session-multiple X]
///                      [--log-level debug|info|warn|error|off]
///
///   --max-pending N      bounded SUBMIT queue: reject with `ERR busy` while
///                        N campaigns are already queued or running
///                        (0 = unbounded)
///   --quota N            per-campaign session quota: SUBMITs whose spec
///                        expands to more than N sessions are shed with
///                        `ERR busy` (0 = unbounded)
///   --deadline-default-ms N  relative deadline applied to SUBMITs that
///                        carry no deadline_ms= token; admission control
///                        sheds infeasible ones with `ERR overdeadline`
///                        (0 = no default deadline)
///   --intake-capacity N  bound of the lock-free submit intake ring between
///                        admission and the scheduler (default 1024)
///   --tcp HOST:PORT      additionally listen on a TCP address (same wire
///                        protocol as the Unix socket — cross-host fleets).
///                        Port 0 picks a free port; the bound address is
///                        written to <root>/serviced.tcp either way, so
///                        scripts can discover it
///   --endpoint M         connection handling: `reactor` (default; epoll +
///                        worker pool) or `legacy` (thread per connection)
///   --endpoint-workers N reactor request-execution workers (default 4)
///   --cache-max-bytes N  bound the result cache to N bytes of entries;
///                        oldest-mtime entries are evicted past the bound
///                        (0 = unbounded)
///   --baseline-cache-entries N  cap the warm-start tiled-baseline cache
///                        (pre-injection builds shared across campaigns;
///                        LRU past the cap, 0 = unbounded, default 8)
///
///   --attach  re-attach to the root's surviving out/ dirs before serving:
///             resume unfinished campaigns from their write-ahead journals,
///             re-register completed ones, archive the rest to out/<id>.stale
///   --once   drain the spool once, wait for those campaigns, and exit.
///   --no-journal   skip the per-campaign out/<id>/events.jsonl audit journal
///   --no-wal   skip the per-campaign out/<id>/journal.wal write-ahead
///              journal (disables crash resume for campaigns run this way)
///   --slow-request-ms N  WARN + count `endpoint.slow_requests` for endpoint
///                        requests slower than N ms (default 1000)
///   --slow-session-multiple X  WARN + count `service.slow_sessions` when a
///                        session exceeds X times the running session-wall
///                        p99 (default 4; <= 0 disables the watchdog)
///   --log-level L  log verbosity (default info)

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <thread>

#include "service/address.hpp"
#include "service/service_endpoint.hpp"
#include "service/session_service.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"

using namespace emutile;

namespace {

volatile std::sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

// SIGUSR2 = begin drain (stop admitting, finish in-flight, exit 0): its own
// flag so the main loop can tell a handoff from a plain shutdown.
volatile std::sig_atomic_t g_drain_signalled = 0;
void on_drain_signal(int) { g_drain_signalled = 1; }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --root DIR [--threads N] [--snapshot-every N] [--poll-ms N]"
               " [--no-cache] [--cache-max-bytes N]"
               " [--baseline-cache-entries N] [--no-socket] [--socket PATH]"
               " [--tcp HOST:PORT]"
               " [--max-pending N] [--quota N] [--deadline-default-ms N]"
               " [--intake-capacity N] [--endpoint reactor|legacy]"
               " [--endpoint-workers N] [--attach] [--once] [--no-drain]"
               " [--no-journal] [--no-wal]"
               " [--slow-request-ms N] [--slow-session-multiple X]"
               " [--log-level debug|info|warn|error|off]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceConfig config;
  config.num_threads = std::max(2u, std::thread::hardware_concurrency());
  std::filesystem::path socket_path;
  std::string tcp_spec;
  EndpointOptions endpoint_options;
  bool use_socket = true;
  bool once = false;
  bool drain_on_exit = true;
  bool attach = false;
  long poll_ms = 250;
  double slow_request_ms = 1000.0;
  LogLevel log_level = LogLevel::kInfo;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") config.root = value();
    else if (arg == "--threads") config.num_threads = std::strtoull(value(), nullptr, 10);
    else if (arg == "--snapshot-every") config.snapshot_every = std::strtoull(value(), nullptr, 10);
    else if (arg == "--poll-ms") poll_ms = std::strtol(value(), nullptr, 10);
    else if (arg == "--max-pending") config.max_pending = std::strtoull(value(), nullptr, 10);
    else if (arg == "--quota") config.session_quota = std::strtoull(value(), nullptr, 10);
    else if (arg == "--deadline-default-ms") config.deadline_default_ms = std::strtoull(value(), nullptr, 10);
    else if (arg == "--intake-capacity") config.intake_capacity = std::strtoull(value(), nullptr, 10);
    else if (arg == "--endpoint-workers") endpoint_options.workers = std::strtoull(value(), nullptr, 10);
    else if (arg == "--endpoint") {
      const std::string mode = value();
      if (mode == "reactor") endpoint_options.mode = EndpointMode::kReactor;
      else if (mode == "legacy") endpoint_options.mode = EndpointMode::kThreadPerConnection;
      else {
        std::cerr << "--endpoint wants reactor|legacy\n";
        return 2;
      }
    }
    else if (arg == "--cache-max-bytes") config.cache_max_bytes = std::strtoull(value(), nullptr, 10);
    else if (arg == "--baseline-cache-entries") config.baseline_cache_entries = std::strtoull(value(), nullptr, 10);
    else if (arg == "--no-cache") config.enable_cache = false;
    else if (arg == "--no-socket") use_socket = false;
    else if (arg == "--socket") socket_path = value();
    else if (arg == "--tcp") tcp_spec = value();
    else if (arg == "--no-journal") config.enable_journal = false;
    else if (arg == "--no-wal") config.enable_wal = false;
    else if (arg == "--attach") attach = true;
    else if (arg == "--slow-request-ms") slow_request_ms = std::strtod(value(), nullptr);
    else if (arg == "--slow-session-multiple") config.slow_session_multiple = std::strtod(value(), nullptr);
    else if (arg == "--log-level") {
      const std::optional<LogLevel> parsed = parse_log_level(value());
      if (!parsed) {
        std::cerr << "--log-level wants debug|info|warn|error|off\n";
        return 2;
      }
      log_level = *parsed;
    }
    else if (arg == "--once") once = true;
    else if (arg == "--no-drain") drain_on_exit = false;
    else return usage(argv[0]);
  }
  if (config.root.empty()) return usage(argv[0]);
  if (socket_path.empty()) socket_path = config.root / "serviced.sock";

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGUSR2, on_drain_signal);
  set_log_threshold(log_level);

  try {
    SessionService service(config);
    if (attach) {
      // Before the endpoint exists: clients reconnecting after the restart
      // must never observe a half-scanned registry.
      const ReattachStats stats = service.reattach();
      std::cout << "reattached: " << stats.resumed << " resumed, "
                << stats.completed << " completed, " << stats.archived
                << " archived (" << stats.resubmitted << " resubmitted)"
                << std::endl;
    }
    std::unique_ptr<ServiceEndpoint> endpoint;
    const std::filesystem::path tcp_file = config.root / "serviced.tcp";
    if (use_socket) {
      if (!tcp_spec.empty())
        endpoint_options.tcp = parse_service_address("tcp:" + tcp_spec);
      endpoint = std::make_unique<ServiceEndpoint>(service, socket_path,
                                                   endpoint_options);
      endpoint->set_slow_request_ms(slow_request_ms);
      // Advertise the *bound* TCP address (port 0 resolves to a real port)
      // so scripts can discover it without parsing our stdout.
      if (endpoint->tcp_address())
        write_file_atomic(tcp_file,
                          endpoint->tcp_address()->to_string() + "\n");
    }

    std::cout << "emutile_serviced: root=" << config.root.string()
              << " threads=" << config.num_threads
              << " snapshot_every=" << config.snapshot_every << " cache="
              << (config.enable_cache ? "on" : "off");
    if (config.enable_cache && config.cache_max_bytes > 0)
      std::cout << " cache_max_bytes=" << config.cache_max_bytes;
    if (endpoint) {
      std::cout << " socket=" << endpoint->socket_path().string()
                << " endpoint="
                << (endpoint->mode() == EndpointMode::kReactor ? "reactor"
                                                               : "legacy");
      if (endpoint->tcp_address())
        std::cout << " tcp=" << endpoint->tcp_address()->to_string();
    }
    if (config.session_quota > 0)
      std::cout << " quota=" << config.session_quota;
    if (config.deadline_default_ms > 0)
      std::cout << " deadline_default_ms=" << config.deadline_default_ms;
    std::cout << std::endl;

    const std::filesystem::path stop_file = config.root / "stop";
    for (;;) {
      if (g_drain_signalled && !service.draining()) {
        std::cout << "SIGUSR2: draining for handoff" << std::endl;
        service.begin_drain();
      }
      // A draining daemon stops polling its spool (spooled specs stay put
      // for the successor), finishes its backlog, and exits 0.
      if (service.draining()) break;
      const std::size_t accepted = service.poll_spool();
      if (accepted > 0)
        std::cout << "accepted " << accepted << " campaign(s) from spool"
                  << std::endl;
      if (once) break;
      if (g_signalled || std::filesystem::exists(stop_file) ||
          (endpoint && endpoint->shutdown_requested()))
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }

    if (drain_on_exit || once || service.draining()) {
      std::cout << "draining in-flight campaigns..." << std::endl;
      service.drain();
    } else {
      for (const CampaignStatus& s : service.list())
        if (s.state == CampaignState::kQueued ||
            s.state == CampaignState::kRunning)
          service.cancel(s.id);
    }
    for (const CampaignStatus& s : service.list())
      std::cout << "  " << s.id << ": " << to_string(s.state) << " ("
                << s.sessions_done << "/" << s.sessions_total << " sessions, "
                << s.cache_hits << " cache hits)" << std::endl;
    std::error_code ec;
    std::filesystem::remove(stop_file, ec);
    if (endpoint && endpoint->tcp_address())
      std::filesystem::remove(tcp_file, ec);
  } catch (const std::exception& e) {
    std::cerr << "emutile_serviced: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
