/// emutile_submit — submit campaign specs to a running emutile_serviced.
///
/// Prefers the daemon's Unix socket (immediate id + optional --wait); falls
/// back to dropping the spec into the spool directory (picked up on the
/// daemon's next poll) when no socket is reachable or --spool is forced.
/// All socket traffic goes through the shared ServiceClient — the same
/// codepath the campaign coordinator uses.
///
///   $ emutile_submit --root DIR [--socket ADDR] [--spool] [--priority N]
///                    [--deadline-ms N] [--wait]
///                    [--status ID | --list | --cancel ID | --cache
///                    | --metrics [json] | --drain] SPEC...
///
///   --socket ADDR    daemon endpoint: a bare path (Unix socket, the legacy
///                    form), `unix:/path`, or `tcp:host:port` — see
///                    address.hpp. Default <root>/serviced.sock.
///
///   --deadline-ms N  relative deadline for socket submissions; the daemon
///                    sheds the SUBMIT with `ERR overdeadline` when its
///                    admission control finds N ms infeasible. Spool
///                    submissions ignore it (no admission on the spool path).
///   --drain          tell the daemon to stop admitting, finish its backlog,
///                    and exit 0 — the rolling-upgrade handoff (see
///                    emutile_serviced --attach for the restart side).
///
/// Spec files are validated locally before submission, so malformed specs
/// fail fast with a parse error instead of landing in spool/rejected/.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/campaign_spec_io.hpp"
#include "obs/trace.hpp"
#include "service/address.hpp"
#include "service/service_client.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"

using namespace emutile;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --root DIR [--socket ADDR] [--spool] [--priority N]"
               " [--deadline-ms N] [--wait]"
               " [--status ID | --list | --cancel ID | --cache"
               " | --metrics [json] | --drain] SPEC...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root;
  std::string socket_arg;
  bool force_spool = false;
  bool wait = false;
  int priority = 0;
  std::uint64_t deadline_ms = 0;
  std::string one_shot;  // "LIST", "STATUS <id>", "CANCEL <id>", "CACHE", ...
  std::vector<std::filesystem::path> specs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") root = value();
    else if (arg == "--socket") socket_arg = value();
    else if (arg == "--spool") force_spool = true;
    else if (arg == "--priority") priority = std::atoi(value());
    else if (arg == "--deadline-ms") deadline_ms = std::strtoull(value(), nullptr, 10);
    else if (arg == "--wait") wait = true;
    else if (arg == "--list") one_shot = "LIST";
    else if (arg == "--status") one_shot = std::string("STATUS ") + value();
    else if (arg == "--cancel") one_shot = std::string("CANCEL ") + value();
    else if (arg == "--cache") one_shot = "CACHE";
    else if (arg == "--drain") one_shot = "DRAIN";
    else if (arg == "--metrics") {
      // Optional bare "json" operand selects the JSON exposition.
      one_shot = "METRICS";
      if (i + 1 < argc && std::string(argv[i + 1]) == "json") {
        one_shot += " json";
        ++i;
      }
    }
    else if (!arg.empty() && arg[0] == '-') return usage(argv[0]);
    else specs.emplace_back(arg);
  }
  if (root.empty()) return usage(argv[0]);
  if (specs.empty() && one_shot.empty()) return usage(argv[0]);

  try {
    // Bare --socket values keep their legacy Unix-socket meaning; unix: and
    // tcp: URIs reach daemons anywhere.
    const ServiceAddress address =
        socket_arg.empty()
            ? ServiceAddress::unix_socket(root / "serviced.sock")
            : parse_service_address(socket_arg);
    ServiceClient client(address);
    if (!one_shot.empty()) {
      std::cout << client.request(one_shot + "\n");
      return 0;
    }

    // The socket is "up" only if it actually answers — a stale socket file
    // left by a crashed daemon must not strand submissions.
    const bool socket_up = !force_spool && client.ping();
    std::vector<std::string> ids;
    for (const std::filesystem::path& spec_path : specs) {
      const std::string text = read_file(spec_path);
      static_cast<void>(parse_campaign_spec(text));  // validate locally

      // Each submission roots its own trace; the daemon parents the
      // campaign's spans on it, so out/<id>/trace.json carries this id.
      const TraceContext trace = Tracer::global().mint_trace();
      const std::string traceparent =
          trace.valid() ? format_traceparent(trace) : std::string();

      if (socket_up) {
        const std::string id =
            client.submit(text, priority, spec_path.stem().string(),
                          traceparent, deadline_ms);
        std::cout << spec_path.string() << " -> " << id;
        if (!traceparent.empty()) std::cout << " trace " << traceparent;
        std::cout << "\n";
        ids.push_back(id);
      } else {
        const std::filesystem::path spooled =
            spool_submit_spec(root, spec_path.stem().string(),
                              prepend_traceparent(text, traceparent));
        std::cout << spec_path.string() << " -> spooled as "
                  << spooled.filename().string();
        if (!traceparent.empty()) std::cout << " trace " << traceparent;
        std::cout << "\n";
      }
    }

    if (wait) {
      EMUTILE_CHECK(socket_up,
                    "--wait needs the daemon socket (spool submissions get "
                    "their id from the daemon, not the client)");
      for (const std::string& id : ids)
        std::cout << id << ": OK " << client.wait(id) << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "emutile_submit: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
