/// emutile_submit — submit campaign specs to a running emutile_serviced.
///
/// Prefers the daemon's Unix socket (immediate id + optional --wait); falls
/// back to dropping the spec into the spool directory (picked up on the
/// daemon's next poll) when no socket is reachable or --spool is forced.
///
///   $ emutile_submit --root DIR [--socket PATH] [--spool] [--priority N]
///                    [--wait] [--status ID | --list | --cancel ID] SPEC...
///
/// Spec files are validated locally before submission, so malformed specs
/// fail fast with a parse error instead of landing in spool/rejected/.

#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign_spec_io.hpp"
#include "service/service_endpoint.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"

using namespace emutile;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --root DIR [--socket PATH] [--spool] [--priority N] [--wait]"
               " [--status ID | --list | --cancel ID] SPEC...\n";
  return 2;
}

/// Atomically drop `text` into the spool as `<stem>-<pid>[-<n>].spec`. The
/// pid keeps concurrent submitters of same-named specs on distinct targets
/// (no lost submission), the -n loop uniquifies retries within one process,
/// and write_file_atomic publishes the .spec whole.
std::filesystem::path spool_submit(const std::filesystem::path& root,
                                   const std::filesystem::path& spec_path,
                                   const std::string& text) {
  const std::filesystem::path spool = root / "spool";
  std::filesystem::create_directories(spool);
  const std::string stem =
      spec_path.stem().string() + "-" + std::to_string(::getpid());
  std::filesystem::path target;
  for (int n = 0;; ++n) {
    target = spool / (stem + (n == 0 ? "" : "-" + std::to_string(n)) + ".spec");
    if (!std::filesystem::exists(target)) break;
  }
  write_file_atomic(target, text);
  return target;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root, socket_path;
  bool force_spool = false;
  bool wait = false;
  int priority = 0;
  std::string one_shot;  // "LIST", "STATUS <id>", or "CANCEL <id>"
  std::vector<std::filesystem::path> specs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") root = value();
    else if (arg == "--socket") socket_path = value();
    else if (arg == "--spool") force_spool = true;
    else if (arg == "--priority") priority = std::atoi(value());
    else if (arg == "--wait") wait = true;
    else if (arg == "--list") one_shot = "LIST";
    else if (arg == "--status") one_shot = std::string("STATUS ") + value();
    else if (arg == "--cancel") one_shot = std::string("CANCEL ") + value();
    else if (!arg.empty() && arg[0] == '-') return usage(argv[0]);
    else specs.emplace_back(arg);
  }
  if (root.empty()) return usage(argv[0]);
  if (socket_path.empty()) socket_path = root / "serviced.sock";
  if (specs.empty() && one_shot.empty()) return usage(argv[0]);

  try {
    if (!one_shot.empty()) {
      std::cout << endpoint_request(socket_path, one_shot + "\n");
      return 0;
    }

    // The socket is "up" only if it actually answers — a stale socket file
    // left by a crashed daemon must not strand submissions.
    bool socket_up = false;
    if (!force_spool) {
      try {
        socket_up = endpoint_request(socket_path, "PING\n") == "OK pong\n";
      } catch (const CheckError&) {
        socket_up = false;
      }
    }
    std::vector<std::string> ids;
    for (const std::filesystem::path& spec_path : specs) {
      const std::string text = read_file(spec_path);
      static_cast<void>(parse_campaign_spec(text));  // validate locally

      if (socket_up) {
        std::ostringstream request;
        request << "SUBMIT " << priority << " " << spec_path.stem().string()
                << "\n"
                << text;
        const std::string response =
            endpoint_request(socket_path, request.str());
        EMUTILE_CHECK(response.rfind("OK ", 0) == 0,
                      "daemon refused " << spec_path << ": " << response);
        const std::string id =
            response.substr(3, response.find('\n') - 3);
        std::cout << spec_path.string() << " -> " << id << "\n";
        ids.push_back(id);
      } else {
        const std::filesystem::path spooled =
            spool_submit(root, spec_path, text);
        std::cout << spec_path.string() << " -> spooled as "
                  << spooled.filename().string() << "\n";
      }
    }

    if (wait) {
      EMUTILE_CHECK(socket_up,
                    "--wait needs the daemon socket (spool submissions get "
                    "their id from the daemon, not the client)");
      for (const std::string& id : ids) {
        const std::string response =
            endpoint_request(socket_path, "WAIT " + id + "\n");
        std::cout << id << ": " << response;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "emutile_submit: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
