/// Perf-regression comparator for the CI `perf` lane.
///
///   $ perf_compare <baseline.json> <current.json> [tolerance]
///
/// Both files are bench MetricsJson documents (see bench/bench_common.hpp):
/// a flat {"bench": ..., "metrics": {"key": number, ...}} object. Every
/// *guarded* metric in the baseline — keys ending in `_ratio` or
/// `_work_units`, all "lower is better" by the naming contract — must be
/// present in the current run and must not exceed
/// baseline * (1 + tolerance). Absolute timings (`_s` keys) never gate:
/// they do not transfer between the machine that recorded the baseline and
/// the machine running CI, so the lane pins machine-portable ratios and
/// deterministic work units instead.
///
/// Exit codes: 0 pass, 1 regression, 2 usage/IO/parse error. Improvements
/// beyond the tolerance band pass but are called out so the baseline gets
/// refreshed (scripts/ci.sh perf-refresh).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "util/file_io.hpp"

namespace {

/// Parse the "metrics" object of a MetricsJson document: a flat sequence of
/// "key": number pairs. Deliberately minimal — we control both producers.
std::map<std::string, double> parse_metrics(const std::string& text,
                                            const std::string& path) {
  const std::size_t anchor = text.find("\"metrics\"");
  if (anchor == std::string::npos) {
    std::cerr << path << ": no \"metrics\" object\n";
    std::exit(2);
  }
  std::size_t pos = text.find('{', anchor);
  if (pos == std::string::npos) {
    std::cerr << path << ": malformed \"metrics\" object\n";
    std::exit(2);
  }
  std::map<std::string, double> metrics;
  ++pos;
  while (pos < text.size()) {
    const std::size_t key_open = text.find_first_of("\"}", pos);
    if (key_open == std::string::npos || text[key_open] == '}') break;
    const std::size_t key_close = text.find('"', key_open + 1);
    const std::size_t colon = text.find(':', key_close);
    if (key_close == std::string::npos || colon == std::string::npos) {
      std::cerr << path << ": malformed metric entry\n";
      std::exit(2);
    }
    const std::string key =
        text.substr(key_open + 1, key_close - key_open - 1);
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + colon + 1, &end);
    if (end == text.c_str() + colon + 1) {
      std::cerr << path << ": metric '" << key << "' has no numeric value\n";
      std::exit(2);
    }
    metrics[key] = value;
    pos = static_cast<std::size_t>(end - text.c_str());
  }
  return metrics;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool guarded(const std::string& key) {
  return ends_with(key, "_ratio") || ends_with(key, "_work_units");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: perf_compare <baseline.json> <current.json> "
                 "[tolerance]\n";
    return 2;
  }
  const double tolerance = argc > 3 ? std::atof(argv[3]) : 0.25;

  std::string baseline_text, current_text;
  try {
    baseline_text = emutile::read_file(argv[1]);
    current_text = emutile::read_file(argv[2]);
  } catch (const std::exception& e) {
    std::cerr << "perf_compare: " << e.what() << "\n";
    return 2;
  }
  const auto baseline = parse_metrics(baseline_text, argv[1]);
  const auto current = parse_metrics(current_text, argv[2]);

  int regressions = 0;
  std::printf("perf_compare: tolerance %.0f%%  (%s vs %s)\n",
              100.0 * tolerance, argv[1], argv[2]);
  std::printf("  %-32s %12s %12s  %s\n", "metric", "baseline", "current",
              "verdict");
  for (const auto& [key, base] : baseline) {
    if (!guarded(key)) continue;
    const auto it = current.find(key);
    if (it == current.end()) {
      std::printf("  %-32s %12.6g %12s  FAIL (missing)\n", key.c_str(), base,
                  "-");
      ++regressions;
      continue;
    }
    const double cur = it->second;
    // Guarded metrics are lower-is-better; the epsilon keeps a zero
    // baseline from failing on representation noise.
    const double allowed = base * (1.0 + tolerance) + 1e-9;
    const char* verdict = "ok";
    if (cur > allowed) {
      verdict = "FAIL (regression)";
      ++regressions;
    } else if (base > 0.0 && cur < base * (1.0 - tolerance)) {
      verdict = "ok (improved — consider perf-refresh)";
    }
    std::printf("  %-32s %12.6g %12.6g  %s\n", key.c_str(), base, cur,
                verdict);
  }
  if (regressions) {
    std::printf("perf_compare: %d guarded metric(s) regressed beyond "
                "%.0f%%\n",
                regressions, 100.0 * tolerance);
    return 1;
  }
  std::printf("perf_compare: all guarded metrics within tolerance\n");
  return 0;
}
